//! Append-only corpus checkpoints: a manifest plus one file per sealed
//! shard, so checkpointing a growing corpus writes only the shards
//! sealed since the last checkpoint instead of rewriting every byte.
//!
//! # Layout
//!
//! ```text
//! <dir>/
//!   manifest.g4m             gnn4ip-corpus-manifest: pin, geometry,
//!                            content-id list, open tail rows
//!   shard-<id:016x>.g4s      gnn4ip-corpus-shard: one sealed shard,
//!                            named by its content id
//! ```
//!
//! Shard files are *content-addressed*: the name is the FNV-1a-64 of the
//! shard's labels and stored row payload, so an unchanged shard maps to
//! an existing file and is skipped, and two checkpoints of the same
//! corpus converge on the same file set. The manifest is written **last**
//! (atomically, like every G4IP artifact), so a crash mid-checkpoint
//! leaves the previous manifest intact with at worst some orphaned —
//! harmless — shard files. Shard files superseded by a
//! [`rebalance`](crate::ShardedEmbeddingIndex::rebalance) are likewise
//! left behind rather than deleted; the manifest alone decides which
//! files are live.
//!
//! Loading cross-checks every shard file against the manifest: a missing
//! file, a file whose recomputed content id disagrees with its name, or
//! a file whose geometry disagrees with the manifest each fail with a
//! dedicated [`ManifestError`] variant instead of a panic or a silently
//! wrong index.

use std::path::Path;
use std::sync::Arc;

use gnn4ip_tensor::{read_artifact, write_artifact, BinReader, BinWriter, QuantParams};

use crate::sharded::{RowBlock, SealedShard, Shard, ShardStorage, ShardedEmbeddingIndex};

/// Artifact kind of the corpus manifest file.
pub const CORPUS_MANIFEST_KIND: &str = "gnn4ip-corpus-manifest";
/// Artifact kind of one sealed-shard file.
pub const CORPUS_SHARD_KIND: &str = "gnn4ip-corpus-shard";
/// Version both corpus kinds are written at.
const CORPUS_VERSION: u16 = 1;
/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.g4m";
/// Largest embedding dimension a manifest may declare. Real detector
/// embeddings are a few hundred wide; anything past this is a corrupt
/// or hostile header, and bounding `dim` here keeps every downstream
/// `rows * dim` product and `with_capacity(dim)` allocation provably
/// small (registered in the analyzer's `TAINT_LIMITS`).
pub const MAX_DIM: usize = 1 << 16;
/// Largest per-shard row count a manifest may declare; bounds the
/// geometry the same way [`MAX_DIM`] does.
pub const MAX_SHARD_ROWS: usize = 1 << 20;

/// File name of the sealed shard with the given content id.
pub fn shard_file_name(content_id: u64) -> String {
    format!("shard-{content_id:016x}.g4s")
}

/// Why a corpus checkpoint could not be written or loaded. Every variant
/// names the offending file where one exists, so an operator can tell a
/// deleted shard from a corrupted one from a manifest for the wrong
/// weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Filesystem failure (other than a missing shard file).
    Io(String),
    /// A file parsed but its contents are malformed or implausible.
    Format(String),
    /// The manifest pins different model weights than expected.
    PinMismatch {
        /// Checksum the manifest was written under.
        pinned: u64,
        /// Checksum the caller expected.
        expected: u64,
    },
    /// The manifest references a shard file that does not exist.
    MissingShard {
        /// File name relative to the checkpoint directory.
        file: String,
    },
    /// A shard file's recomputed content id disagrees with the id it was
    /// stored under — the payload was corrupted or substituted.
    ShardChecksumMismatch {
        /// File name relative to the checkpoint directory.
        file: String,
        /// Content id the manifest (and file name) promise.
        expected: u64,
        /// Content id recomputed from the file's payload.
        actual: u64,
    },
    /// A shard file is internally consistent but does not belong to this
    /// manifest (wrong geometry or self-declared id).
    ShardMismatch {
        /// File name relative to the checkpoint directory.
        file: String,
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "corpus checkpoint I/O error: {e}"),
            Self::Format(e) => write!(f, "corpus checkpoint format error: {e}"),
            Self::PinMismatch { pinned, expected } => write!(
                f,
                "corpus manifest was built by weights {pinned:#018x}, \
                 expected {expected:#018x}; re-embed instead of loading"
            ),
            Self::MissingShard { file } => {
                write!(f, "corpus manifest references missing shard file {file}")
            }
            Self::ShardChecksumMismatch {
                file,
                expected,
                actual,
            } => write!(
                f,
                "shard file {file} content id mismatch: \
                 stored under {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            Self::ShardMismatch { file, detail } => {
                write!(
                    f,
                    "shard file {file} does not belong to this manifest: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// What one [`ShardedEmbeddingIndex::checkpoint_dir`] call wrote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Sealed-shard files newly written by this checkpoint.
    pub shards_written: usize,
    /// Sealed shards whose content-addressed file already existed.
    pub shards_reused: usize,
    /// Bytes written for new shard files (manifest excluded).
    pub bytes_written: usize,
    /// Bytes of the (always rewritten) manifest.
    pub manifest_bytes: usize,
}

/// Serializes one sealed shard into its content-addressed artifact.
fn shard_bytes(shard: &SealedShard, dim: usize) -> Vec<u8> {
    let mut w = BinWriter::with_version(CORPUS_SHARD_KIND, CORPUS_VERSION);
    w.u64(shard.content_id);
    w.len_of(dim);
    w.len_of(shard.labels.len());
    for &l in &shard.labels {
        w.u64(l as u64);
    }
    match &shard.rows {
        RowBlock::F32(data) => {
            w.u8(0);
            for &v in data {
                w.f32(v);
            }
        }
        RowBlock::Int8 { q, params, .. } => {
            w.u8(1);
            w.f32(params.scale);
            // g4check: allow(cast-truncation): i8→u8 reinterprets the bit pattern, round-trips
            w.u8(params.zero_point as u8);
            // g4check: allow(cast-truncation): i8→u8 reinterprets the bit pattern, round-trips
            let codes: Vec<u8> = q.iter().map(|&c| c as u8).collect();
            w.bytes(&codes);
        }
    }
    for &v in &shard.centroid {
        w.f32(v);
    }
    w.f32(shard.radius);
    w.f32(shard.max_norm);
    w.finish()
}

/// Parses and validates one shard file against the geometry and content
/// id the manifest promises for it.
fn parse_shard(
    bytes: &[u8],
    file: &str,
    dim: usize,
    shard_capacity: usize,
    expected_id: u64,
) -> Result<SealedShard, ManifestError> {
    let fmt = |e: String| ManifestError::Format(format!("{file}: {e}"));
    let mut r = BinReader::open_versioned(bytes, CORPUS_SHARD_KIND, CORPUS_VERSION).map_err(fmt)?;
    let declared_id = r.u64().map_err(fmt)?;
    if declared_id != expected_id {
        return Err(ManifestError::ShardMismatch {
            file: file.to_string(),
            detail: format!(
                "declares content id {declared_id:#018x}, manifest expects {expected_id:#018x}"
            ),
        });
    }
    let file_dim = r.len_of().map_err(fmt)?;
    let rows = r.count_of(8).map_err(fmt)?;
    if file_dim != dim || rows != shard_capacity {
        return Err(ManifestError::ShardMismatch {
            file: file.to_string(),
            detail: format!("geometry {rows}x{file_dim}, manifest expects {shard_capacity}x{dim}"),
        });
    }
    let mut labels = Vec::with_capacity(rows);
    for _ in 0..rows {
        labels.push(
            usize::try_from(r.u64().map_err(fmt)?)
                .map_err(|_| fmt("label overflows usize".to_string()))?,
        );
    }
    let tag = r.u8().map_err(fmt)?;
    let (data, quant): (Vec<f32>, Option<(Vec<i8>, QuantParams)>) = match tag {
        0 => {
            let mut data = Vec::with_capacity(rows * dim);
            for _ in 0..rows * dim {
                data.push(r.f32().map_err(fmt)?);
            }
            (data, None)
        }
        1 => {
            let scale = r.f32().map_err(fmt)?;
            if !(scale.is_finite() && scale > 0.0) {
                return Err(fmt(format!("implausible quantization scale {scale}")));
            }
            // g4check: allow(cast-truncation): u8→i8 inverts the writer's bit-pattern cast
            let zero_point = r.u8().map_err(fmt)? as i8;
            let codes = r.bytes().map_err(fmt)?;
            if codes.len() != rows * dim {
                return Err(fmt(format!(
                    "quantized payload holds {} codes, geometry needs {}",
                    codes.len(),
                    rows * dim
                )));
            }
            // g4check: allow(cast-truncation): u8→i8 inverts the writer's bit-pattern cast
            let q: Vec<i8> = codes.iter().map(|&b| b as i8).collect();
            (Vec::new(), Some((q, QuantParams { scale, zero_point })))
        }
        t => return Err(fmt(format!("unknown row-storage tag {t}"))),
    };
    let mut centroid = Vec::with_capacity(dim);
    for _ in 0..dim {
        centroid.push(r.f32().map_err(fmt)?);
    }
    let radius = r.f32().map_err(fmt)?;
    let max_norm = r.f32().map_err(fmt)?;
    r.done().map_err(fmt)?;
    // same sanity gate as the monolithic loader: a forged non-finite or
    // negative bound would silently over-prune, which is worse than
    // failing loudly
    let sane = |v: f32| v.is_finite() && v >= 0.0;
    if !sane(radius) || !sane(max_norm) || centroid.iter().any(|v| !v.is_finite()) {
        return Err(fmt(format!(
            "corrupt bounds (radius {radius}, max_norm {max_norm}, or non-finite centroid)"
        )));
    }
    let shard = match quant {
        None => SealedShard::from_f32_parts(data, labels, centroid, radius, max_norm),
        Some((q, params)) => {
            SealedShard::from_int8_parts(q, params, labels, dim, centroid, radius, max_norm)
        }
    };
    // the payload must hash to the name it was stored under — catches a
    // substituted or bit-rotted file whose own artifact checksum is valid
    if shard.content_id != expected_id {
        return Err(ManifestError::ShardChecksumMismatch {
            file: file.to_string(),
            expected: expected_id,
            actual: shard.content_id,
        });
    }
    Ok(shard)
}

impl ShardedEmbeddingIndex {
    /// Writes an append-only checkpoint of the index into `dir`: one
    /// content-addressed file per sealed shard (skipping files that
    /// already exist — an unchanged shard costs zero bytes) and the
    /// manifest, written last so a crash can never publish a manifest
    /// whose shards are missing. Checkpointing a corpus that grew by `N`
    /// rows since the last checkpoint therefore writes `O(N)` bytes, not
    /// `O(corpus)`.
    ///
    /// `pinned_checksum` follows the same discipline as
    /// [`ShardedEmbeddingIndex::to_bytes`]: the weights checksum of the
    /// model whose embeddings fill the index.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors; never on index contents.
    pub fn checkpoint_dir(
        &self,
        dir: impl AsRef<Path>,
        pinned_checksum: u64,
    ) -> Result<CheckpointReport, ManifestError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| ManifestError::Io(format!("creating {}: {e}", dir.display())))?;
        let mut report = CheckpointReport::default();
        for shard in &self.sealed {
            let file = dir.join(shard_file_name(shard.content_id));
            if file.exists() {
                report.shards_reused += 1;
                continue;
            }
            let bytes = shard_bytes(shard, self.dim);
            write_artifact(&file, &bytes).map_err(ManifestError::Io)?;
            report.shards_written += 1;
            report.bytes_written += bytes.len();
        }
        let mut w = BinWriter::with_version(CORPUS_MANIFEST_KIND, CORPUS_VERSION);
        w.u64(pinned_checksum);
        w.len_of(self.dim);
        w.len_of(self.shard_capacity);
        w.u8(match self.storage {
            ShardStorage::F32 => 0,
            ShardStorage::Int8 => 1,
        });
        w.len_of(self.sealed.len());
        for shard in &self.sealed {
            w.u64(shard.content_id);
        }
        w.len_of(self.tail.labels.len());
        for &l in &self.tail.labels {
            w.u64(l as u64);
        }
        for &v in &self.tail.data {
            w.f32(v);
        }
        let manifest = w.finish();
        report.manifest_bytes = manifest.len();
        write_artifact(&dir.join(MANIFEST_FILE), &manifest).map_err(ManifestError::Io)?;
        Ok(report)
    }

    /// Loads a checkpoint written by
    /// [`ShardedEmbeddingIndex::checkpoint_dir`], validating every shard
    /// file against the manifest.
    ///
    /// # Errors
    ///
    /// [`ManifestError::PinMismatch`] when the manifest was built by
    /// different weights; [`ManifestError::MissingShard`] when a
    /// referenced shard file does not exist;
    /// [`ManifestError::ShardChecksumMismatch`] when a shard file's
    /// payload no longer hashes to its content id;
    /// [`ManifestError::ShardMismatch`] when a (valid) shard file does
    /// not belong to this manifest; [`ManifestError::Format`] /
    /// [`ManifestError::Io`] for corrupt files and filesystem failures.
    pub fn load_dir(dir: impl AsRef<Path>, expected_checksum: u64) -> Result<Self, ManifestError> {
        let dir = dir.as_ref();
        let manifest_bytes = read_artifact(&dir.join(MANIFEST_FILE)).map_err(ManifestError::Io)?;
        let mfmt = |e: String| ManifestError::Format(format!("{MANIFEST_FILE}: {e}"));
        let mut r =
            BinReader::open_versioned(&manifest_bytes, CORPUS_MANIFEST_KIND, CORPUS_VERSION)
                .map_err(mfmt)?;
        let pinned = r.u64().map_err(mfmt)?;
        if pinned != expected_checksum {
            return Err(ManifestError::PinMismatch {
                pinned,
                expected: expected_checksum,
            });
        }
        let dim = r.len_of().map_err(mfmt)?;
        let shard_capacity = r.len_of().map_err(mfmt)?;
        if dim == 0 || shard_capacity == 0 {
            return Err(mfmt(format!(
                "zero dim ({dim}) or shard capacity ({shard_capacity})"
            )));
        }
        // the geometry is attacker-controlled until bounded: these two
        // comparisons are what lets every later `rows * dim` product
        // and `with_capacity` call trust the header
        if dim > MAX_DIM || shard_capacity > MAX_SHARD_ROWS {
            return Err(mfmt(format!(
                "implausible geometry {shard_capacity}x{dim} \
                 (limits {MAX_SHARD_ROWS}x{MAX_DIM})"
            )));
        }
        let storage = match r.u8().map_err(mfmt)? {
            0 => ShardStorage::F32,
            1 => ShardStorage::Int8,
            t => return Err(mfmt(format!("unknown storage tag {t}"))),
        };
        let n_sealed = r.count_of(8).map_err(mfmt)?;
        let mut ids = Vec::with_capacity(n_sealed);
        for _ in 0..n_sealed {
            ids.push(r.u64().map_err(mfmt)?);
        }
        let row_bytes = dim
            .checked_mul(4)
            .and_then(|b| b.checked_add(8))
            .ok_or_else(|| mfmt(format!("implausible dimension {dim}")))?;
        let tail_rows = r.count_of(row_bytes).map_err(mfmt)?;
        if tail_rows >= shard_capacity {
            return Err(mfmt(format!(
                "tail holds {tail_rows} rows, capacity {shard_capacity} would have sealed it"
            )));
        }
        let mut tail = Shard::new(tail_rows, dim);
        for _ in 0..tail_rows {
            tail.labels.push(
                usize::try_from(r.u64().map_err(mfmt)?)
                    .map_err(|_| mfmt("label overflows usize".to_string()))?,
            );
        }
        for _ in 0..tail_rows * dim {
            tail.data.push(r.f32().map_err(mfmt)?);
        }
        r.done().map_err(mfmt)?;

        let mut sealed = Vec::with_capacity(n_sealed);
        for id in ids {
            let file = shard_file_name(id);
            let bytes = match std::fs::read(dir.join(&file)) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Err(ManifestError::MissingShard { file });
                }
                Err(e) => return Err(ManifestError::Io(format!("reading {file}: {e}"))),
            };
            sealed.push(Arc::new(parse_shard(
                &bytes,
                &file,
                dim,
                shard_capacity,
                id,
            )?));
        }
        Ok(Self {
            dim,
            shard_capacity,
            storage,
            sealed,
            tail,
        })
    }
}

/// What [`gc_checkpoint_dir`] found (and, unless dry-run, removed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Manifest-referenced shard files present in the directory.
    pub live: usize,
    /// Shard files no manifest entry references, sorted by name. In a
    /// dry run these are what *would* be removed; otherwise they were.
    pub orphans: Vec<String>,
    /// Total size of the orphaned files.
    pub orphan_bytes: u64,
    /// True when nothing was deleted.
    pub dry_run: bool,
}

/// Removes orphaned `shard-*.g4s` files from a checkpoint directory.
///
/// Checkpoints are content-addressed and append-only: a rebalance (or
/// any reshard) writes new shard files and a new manifest, but the old
/// generation's shard files stay behind forever. This walks `dir`,
/// parses the manifest's live content-id list (without pin validation —
/// garbage is garbage whichever weights wrote it), and deletes every
/// well-formed shard file whose id the manifest no longer references.
/// Files that don't match the `shard-<16 hex>.g4s` pattern are never
/// touched. With `dry_run` the report lists the orphans and nothing is
/// deleted.
///
/// # Errors
///
/// [`ManifestError::Io`] on filesystem failures, [`ManifestError::Format`]
/// when the manifest is unreadable — in both cases nothing is deleted.
pub fn gc_checkpoint_dir(dir: impl AsRef<Path>, dry_run: bool) -> Result<GcReport, ManifestError> {
    let dir = dir.as_ref();
    let manifest_bytes = read_artifact(&dir.join(MANIFEST_FILE)).map_err(ManifestError::Io)?;
    let mfmt = |e: String| ManifestError::Format(format!("{MANIFEST_FILE}: {e}"));
    let mut r = BinReader::open_versioned(&manifest_bytes, CORPUS_MANIFEST_KIND, CORPUS_VERSION)
        .map_err(mfmt)?;
    r.u64().map_err(mfmt)?; // pinned checksum — irrelevant to GC
    r.len_of().map_err(mfmt)?; // dim
    r.len_of().map_err(mfmt)?; // shard capacity
    r.u8().map_err(mfmt)?; // storage tag
    let n_sealed = r.count_of(8).map_err(mfmt)?;
    let mut live_ids = Vec::with_capacity(n_sealed);
    for _ in 0..n_sealed {
        live_ids.push(r.u64().map_err(mfmt)?);
    }

    let mut report = GcReport {
        dry_run,
        ..GcReport::default()
    };
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ManifestError::Io(format!("reading {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| ManifestError::Io(format!("reading dir entry: {e}")))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(id) = parse_shard_file_name(name) else {
            continue;
        };
        if live_ids.contains(&id) {
            report.live += 1;
            continue;
        }
        report.orphan_bytes += entry
            .metadata()
            .map_err(|e| ManifestError::Io(format!("stat {name}: {e}")))?
            .len();
        report.orphans.push(name.to_string());
    }
    report.orphans.sort();
    if !dry_run {
        for name in &report.orphans {
            std::fs::remove_file(dir.join(name))
                .map_err(|e| ManifestError::Io(format!("removing {name}: {e}")))?;
        }
    }
    Ok(report)
}

/// Inverts [`shard_file_name`]: the content id of a well-formed
/// `shard-<16 hex>.g4s` name, or `None` for anything else.
fn parse_shard_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("shard-")?.strip_suffix(".g4s")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueryOptions, RebalanceOptions};

    fn synthetic_index(storage: ShardStorage, rows: usize) -> ShardedEmbeddingIndex {
        let dim = 6;
        let mut index = ShardedEmbeddingIndex::with_storage(dim, 4, storage);
        for i in 0..rows {
            let row: Vec<f32> = (0..dim)
                .map(|d| ((i * 31 + d * 17) % 13) as f32 * 0.21 - 1.2)
                .collect();
            index.insert(&row, i % 5);
        }
        index
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("g4ip-manifest-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_roundtrips_bit_identically() {
        for storage in [ShardStorage::F32, ShardStorage::Int8] {
            let index = synthetic_index(storage, 19);
            let dir = tmp_dir(&format!("roundtrip-{storage:?}"));
            let report = index.checkpoint_dir(&dir, 0xfeed).unwrap();
            assert_eq!(report.shards_written, index.num_sealed_shards());
            assert_eq!(report.shards_reused, 0);
            let loaded = ShardedEmbeddingIndex::load_dir(&dir, 0xfeed).unwrap();
            assert_eq!(loaded, index);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn second_checkpoint_writes_only_new_shards() {
        let mut index = synthetic_index(ShardStorage::Int8, 17); // 4 sealed + tail
        let dir = tmp_dir("incremental");
        let first = index.checkpoint_dir(&dir, 1).unwrap();
        assert_eq!(first.shards_written, 4);
        for i in 17..26 {
            index.insert(&[i as f32 * 0.1; 6], i);
        }
        let second = index.checkpoint_dir(&dir, 1).unwrap();
        assert_eq!(second.shards_reused, 4);
        assert_eq!(second.shards_written, index.num_sealed_shards() - 4);
        assert!(second.shards_written >= 1);
        let loaded = ShardedEmbeddingIndex::load_dir(&dir, 1).unwrap();
        assert_eq!(loaded, index);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_removes_rebalance_orphans_and_honors_dry_run() {
        let mut index = synthetic_index(ShardStorage::F32, 25);
        let dir = tmp_dir("gc-rebalance");
        index.checkpoint_dir(&dir, 3).unwrap();

        // a rebalance regroups rows into fresh content-addressed shards;
        // checkpointing again strands the first generation's files
        index.rebalance(&RebalanceOptions::default());
        index.checkpoint_dir(&dir, 3).unwrap();

        let dry = gc_checkpoint_dir(&dir, true).unwrap();
        assert!(dry.dry_run);
        assert!(!dry.orphans.is_empty(), "rebalance left no orphans?");
        assert!(dry.orphan_bytes > 0);
        for name in &dry.orphans {
            assert!(dir.join(name).exists(), "dry run must not delete {name}");
        }

        let real = gc_checkpoint_dir(&dir, false).unwrap();
        assert_eq!(real.orphans, dry.orphans);
        assert_eq!(real.orphan_bytes, dry.orphan_bytes);
        for name in &real.orphans {
            assert!(!dir.join(name).exists(), "{name} should be gone");
        }

        // the live checkpoint survives the sweep, and a second GC is a no-op
        let loaded = ShardedEmbeddingIndex::load_dir(&dir, 3).unwrap();
        assert_eq!(loaded, index);
        let again = gc_checkpoint_dir(&dir, false).unwrap();
        assert!(again.orphans.is_empty());
        assert_eq!(again.live, index.num_sealed_shards());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_ignores_unrelated_files_and_bad_names() {
        let index = synthetic_index(ShardStorage::Int8, 13);
        let dir = tmp_dir("gc-ignores");
        index.checkpoint_dir(&dir, 9).unwrap();
        std::fs::write(dir.join("notes.txt"), b"keep me").unwrap();
        std::fs::write(dir.join("shard-zz.g4s"), b"not a shard name").unwrap();
        let report = gc_checkpoint_dir(&dir, false).unwrap();
        assert!(report.orphans.is_empty(), "{report:?}");
        assert_eq!(report.live, index.num_sealed_shards());
        assert!(dir.join("notes.txt").exists());
        assert!(dir.join("shard-zz.g4s").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pin_mismatch_is_typed() {
        let index = synthetic_index(ShardStorage::F32, 9);
        let dir = tmp_dir("pin");
        index.checkpoint_dir(&dir, 7).unwrap();
        match ShardedEmbeddingIndex::load_dir(&dir, 8) {
            Err(ManifestError::PinMismatch {
                pinned: 7,
                expected: 8,
            }) => {}
            other => panic!("expected PinMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_shard_file_is_typed() {
        let index = synthetic_index(ShardStorage::F32, 9);
        let dir = tmp_dir("missing");
        index.checkpoint_dir(&dir, 0).unwrap();
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "g4s"))
            .unwrap();
        std::fs::remove_file(&victim).unwrap();
        match ShardedEmbeddingIndex::load_dir(&dir, 0) {
            Err(ManifestError::MissingShard { file }) => {
                assert_eq!(victim.file_name().unwrap().to_str().unwrap(), file);
            }
            other => panic!("expected MissingShard, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_shard_payload_is_typed() {
        let index = synthetic_index(ShardStorage::Int8, 9);
        let dir = tmp_dir("corrupt");
        index.checkpoint_dir(&dir, 0).unwrap();
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "g4s"))
            .unwrap();
        // flip one payload bit, then re-seal the artifact checksum so
        // only the content-id cross-check (or structural validation) can
        // catch the substitution
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let body_len = bytes.len() - 8;
        let sum = gnn4ip_tensor::fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&victim, &bytes).unwrap();
        match ShardedEmbeddingIndex::load_dir(&dir, 0) {
            Err(ManifestError::ShardChecksumMismatch { .. }) => {}
            // the flipped byte may instead land in a length/bounds field
            // and fail structural validation first — also typed, also fine
            Err(ManifestError::Format(_)) | Err(ManifestError::ShardMismatch { .. }) => {}
            other => panic!("expected a typed shard error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn swapped_shard_files_are_rejected() {
        let index = synthetic_index(ShardStorage::F32, 13); // 3 sealed shards
        let dir = tmp_dir("swap");
        index.checkpoint_dir(&dir, 0).unwrap();
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "g4s"))
            .collect();
        files.sort();
        assert!(files.len() >= 2);
        let a = std::fs::read(&files[0]).unwrap();
        let b = std::fs::read(&files[1]).unwrap();
        std::fs::write(&files[0], &b).unwrap();
        std::fs::write(&files[1], &a).unwrap();
        match ShardedEmbeddingIndex::load_dir(&dir, 0) {
            Err(ManifestError::ShardMismatch { .. }) => {}
            other => panic!("expected ShardMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loaded_checkpoint_answers_queries_identically() {
        let index = synthetic_index(ShardStorage::Int8, 23);
        let dir = tmp_dir("queries");
        index.checkpoint_dir(&dir, 3).unwrap();
        let loaded = ShardedEmbeddingIndex::load_dir(&dir, 3).unwrap();
        let query = [0.4f32, -0.2, 0.9, 0.1, -0.7, 0.3];
        for opts in [
            QueryOptions::default(),
            QueryOptions {
                int8_scan: false,
                ..QueryOptions::default()
            },
        ] {
            let (a, _) = index.query_opts(&query, 5, &opts);
            let (b, _) = loaded.query_opts(&query, 5, &opts);
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
