//! Principal component analysis (Fig. 4b).
//!
//! Projects hw2vec's 16-dimensional embeddings onto their top principal
//! components via power iteration with deflation — the embedding dimension
//! is tiny, so nothing heavier is warranted.

/// Result of a PCA projection.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaProjection {
    /// Projected points, `n x k` row-major.
    pub points: Vec<Vec<f64>>,
    /// Fraction of total variance explained per kept component.
    pub explained_variance: Vec<f64>,
}

/// Projects `data` (n rows of equal dimension) onto its top `k` principal
/// components.
///
/// # Panics
///
/// Panics if rows are ragged, `data` is empty, or `k` exceeds the dimension.
///
/// # Examples
///
/// ```
/// use gnn4ip_eval::pca;
///
/// // points on a line: first component captures ~all variance
/// let data: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, 2.0 * i as f32]).collect();
/// let proj = pca(&data, 1);
/// assert!(proj.explained_variance[0] > 0.99);
/// ```
pub fn pca(data: &[Vec<f32>], k: usize) -> PcaProjection {
    assert!(!data.is_empty(), "pca on empty data");
    let d = data[0].len();
    assert!(data.iter().all(|r| r.len() == d), "ragged pca input");
    assert!(k <= d, "cannot keep {k} components of dimension {d}");
    let n = data.len();

    // center
    let mut mean = vec![0.0f64; d];
    for row in data {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v as f64;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let centered: Vec<Vec<f64>> = data
        .iter()
        .map(|row| row.iter().zip(&mean).map(|(&v, m)| v as f64 - m).collect())
        .collect();

    // covariance (d x d)
    let mut cov = vec![vec![0.0f64; d]; d];
    for row in &centered {
        for i in 0..d {
            for j in 0..d {
                cov[i][j] += row[i] * row[j];
            }
        }
    }
    let denom = (n.max(2) - 1) as f64;
    for r in &mut cov {
        for v in r.iter_mut() {
            *v /= denom;
        }
    }
    let total_var: f64 = (0..d).map(|i| cov[i][i]).sum();

    // power iteration with deflation
    let mut components: Vec<Vec<f64>> = Vec::new();
    let mut eigenvalues: Vec<f64> = Vec::new();
    let mut work = cov.clone();
    for c in 0..k {
        // Deterministic but incommensurate init so it is never orthogonal to
        // the dominant eigenvector of typical data.
        let mut v: Vec<f64> = (0..d)
            .map(|i| (0.37 + 0.61 * (i + c) as f64).sin() + 0.05)
            .collect();
        normalize(&mut v);
        let mut lambda = 0.0f64;
        for _ in 0..500 {
            let mut next = matvec(&work, &v);
            let norm = normalize(&mut next);
            let delta: f64 = next
                .iter()
                .zip(&v)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            v = next;
            lambda = norm;
            if delta < 1e-12 {
                break;
            }
        }
        // deflate: work -= lambda v v^T
        for i in 0..d {
            for j in 0..d {
                work[i][j] -= lambda * v[i] * v[j];
            }
        }
        components.push(v);
        eigenvalues.push(lambda.max(0.0));
    }

    let points: Vec<Vec<f64>> = centered
        .iter()
        .map(|row| {
            components
                .iter()
                .map(|c| row.iter().zip(c).map(|(a, b)| a * b).sum())
                .collect()
        })
        .collect();
    let explained_variance = eigenvalues
        .iter()
        .map(|&l| if total_var > 0.0 { l / total_var } else { 0.0 })
        .collect();
    PcaProjection {
        points,
        explained_variance,
    }
}

fn matvec(m: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    m.iter()
        .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
        .collect()
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-300 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Mean silhouette-style separation of a labeled 2-D/3-D projection:
/// `(mean inter-cluster distance - mean intra-cluster distance) / max` —
/// positive values mean the clusters separate, approaching 1 for clean
/// separation (the qualitative claim of Fig. 4b/4c).
///
/// # Panics
///
/// Panics if lengths differ or fewer than two points are given.
pub fn cluster_separation(points: &[Vec<f64>], labels: &[usize]) -> f64 {
    assert_eq!(points.len(), labels.len(), "points/labels mismatch");
    assert!(points.len() >= 2, "need at least two points");
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let mut intra = (0.0f64, 0usize);
    let mut inter = (0.0f64, 0usize);
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = dist(&points[i], &points[j]);
            if labels[i] == labels[j] {
                intra.0 += d;
                intra.1 += 1;
            } else {
                inter.0 += d;
                inter.1 += 1;
            }
        }
    }
    let mean_intra = if intra.1 == 0 {
        0.0
    } else {
        intra.0 / intra.1 as f64
    };
    let mean_inter = if inter.1 == 0 {
        0.0
    } else {
        inter.0 / inter.1 as f64
    };
    let denom = mean_intra.max(mean_inter);
    if denom == 0.0 {
        0.0
    } else {
        (mean_inter - mean_intra) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projects_onto_dominant_direction() {
        // data spread along (1, 1), tiny noise along (1, -1)
        let data: Vec<Vec<f32>> = (0..50)
            .map(|i| {
                let t = i as f32 / 5.0;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + noise, t - noise]
            })
            .collect();
        let proj = pca(&data, 2);
        assert!(proj.explained_variance[0] > 0.999);
        assert!(proj.explained_variance[1] < 0.001);
    }

    #[test]
    fn projection_count_matches_input() {
        let data: Vec<Vec<f32>> = (0..7).map(|i| vec![i as f32, 1.0, -1.0]).collect();
        let proj = pca(&data, 2);
        assert_eq!(proj.points.len(), 7);
        assert_eq!(proj.points[0].len(), 2);
    }

    #[test]
    fn components_are_orthogonal_projections() {
        let data: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                let x = (i % 8) as f32;
                let y = (i / 8) as f32 * 3.0;
                vec![x, y, x + y]
            })
            .collect();
        let proj = pca(&data, 2);
        // correlation of the two projected coordinates should be ~0
        let n = proj.points.len() as f64;
        let mx: f64 = proj.points.iter().map(|p| p[0]).sum::<f64>() / n;
        let my: f64 = proj.points.iter().map(|p| p[1]).sum::<f64>() / n;
        let cov: f64 = proj
            .points
            .iter()
            .map(|p| (p[0] - mx) * (p[1] - my))
            .sum::<f64>()
            / n;
        let sx: f64 = (proj.points.iter().map(|p| (p[0] - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy: f64 = (proj.points.iter().map(|p| (p[1] - my).powi(2)).sum::<f64>() / n).sqrt();
        let corr = cov / (sx * sy).max(1e-12);
        assert!(corr.abs() < 0.05, "components correlate: {corr}");
    }

    #[test]
    fn cluster_separation_detects_separated_clusters() {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            labels.push(0);
            pts.push(vec![100.0 + i as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        assert!(cluster_separation(&pts, &labels) > 0.9);
    }

    #[test]
    fn cluster_separation_near_zero_for_mixed() {
        let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 5) as f64, 0.0]).collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        assert!(cluster_separation(&pts, &labels).abs() < 0.3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = pca(&[], 1);
    }
}
