//! # gnn4ip-eval
//!
//! Evaluation utilities for the GNN4IP reproduction: the confusion matrices
//! and accuracy/false-negative metrics of Table I / Fig. 4a / §IV-F, the
//! [`pca`] projection of Fig. 4b, the exact [`tsne`] of Fig. 4c, and the
//! similarity [`ScoreTable`]s of Tables II and III.
//!
//! # Examples
//!
//! ```
//! use gnn4ip_eval::ConfusionMatrix;
//!
//! let scores = [0.97f32, 0.88, -0.30, 0.10];
//! let similar = [true, true, false, false];
//! let cm = ConfusionMatrix::from_scores(&scores, &similar, 0.5);
//! assert_eq!(cm.accuracy(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confusion;
mod index;
mod manifest;
mod pca;
mod retrieval;
mod roc;
mod scores;
mod sharded;
mod tsne;

pub use confusion::ConfusionMatrix;
pub use index::{EmbeddingIndex, QueryHit};
pub use manifest::{
    gc_checkpoint_dir, shard_file_name, CheckpointReport, GcReport, ManifestError,
    CORPUS_MANIFEST_KIND, CORPUS_SHARD_KIND, MANIFEST_FILE,
};
pub use pca::{cluster_separation, pca, PcaProjection};
pub use retrieval::retrieval_precision_at_k;
pub use roc::{auc, roc_curve, RocPoint};
pub use scores::{ScoreRow, ScoreTable};
pub use sharded::{
    QueryOptions, QueryStats, RebalanceOptions, RebalanceReport, ShardStorage,
    ShardedEmbeddingIndex, PARALLEL_QUERY_MIN_ROWS, SHARD_INDEX_KIND,
};
pub use tsne::{tsne, TsneConfig};
