//! A corpus-scale cosine-similarity index over hw2vec embeddings.
//!
//! §IV-C argues hw2vec embeddings separate designs in embedding space; the
//! deployment consequence is a *library*: embed every owned IP once, then
//! answer "what is this suspect closest to?" forever. [`EmbeddingIndex`]
//! stores row-normalized embeddings in one contiguous matrix, so a query
//! is a single matrix-vector product and the full pairwise similarity
//! of `n` entries is one blocked `E · Eᵀ` gemm instead of `n²` scalar
//! dot-product calls.

use gnn4ip_tensor::Matrix;

/// One query result: the neighbor's position, label, and cosine score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryHit {
    /// Insertion index of the neighbor.
    pub index: usize,
    /// Label the neighbor was inserted with.
    pub label: usize,
    /// Cosine similarity to the query, in `[-1, 1]`.
    pub score: f32,
}

/// An incrementally built index of row-normalized embeddings.
///
/// # Examples
///
/// ```
/// use gnn4ip_eval::EmbeddingIndex;
///
/// let mut index = EmbeddingIndex::new(2);
/// index.insert(&[1.0, 0.0], 0);
/// index.insert(&[0.9, 0.1], 0);
/// index.insert(&[0.0, 2.0], 1);
/// let hits = index.query(&[1.0, 0.05], 2);
/// assert_eq!(hits.len(), 2);
/// assert_eq!(hits[0].label, 0); // nearest neighbors are the x-axis cluster
/// assert!(hits[0].score >= hits[1].score);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingIndex {
    dim: usize,
    /// Row-major `len x dim` normalized embeddings (zero rows for
    /// zero-norm or non-finite inputs, which score 0 against everything).
    data: Vec<f32>,
    labels: Vec<usize>,
}

/// Appends the row-normalized form of `embedding` to `out`.
///
/// Rows containing a NaN/inf component — or whose norm is not a normal
/// positive float — are stored as zero rows: they score 0 against every
/// query instead of poisoning top-k order with NaN comparisons. The flat
/// and sharded indexes share this one implementation so their stored rows
/// are bit-identical for identical inputs.
pub(crate) fn normalize_into(embedding: &[f32], out: &mut Vec<f32>) {
    let norm = embedding.iter().map(|v| v * v).sum::<f32>().sqrt();
    if !norm.is_finite() || norm < 1e-12 || embedding.iter().any(|v| !v.is_finite()) {
        out.extend(std::iter::repeat_n(0.0, embedding.len()));
    } else {
        out.extend(embedding.iter().map(|v| v / norm));
    }
}

/// Cosine score of a *normalized* row against a raw query with
/// precomputed norm `qnorm` (pass a non-finite or sub-`1e-12` `qnorm` to
/// force the zero-query path). Shared by the flat and sharded indexes so
/// per-row scores are bit-identical between them.
pub(crate) fn score_row(row: &[f32], query: &[f32], qnorm: f32) -> f32 {
    if !qnorm.is_finite() || qnorm < 1e-12 {
        return 0.0;
    }
    let dot: f32 = row.iter().zip(query).map(|(&r, &q)| r * q).sum();
    dot / qnorm
}

/// Norm of a query vector, collapsed to `0.0` when any component is
/// non-finite so [`score_row`] takes the zero-query path.
pub(crate) fn query_norm(query: &[f32]) -> f32 {
    if query.iter().any(|v| !v.is_finite()) {
        return 0.0;
    }
    query.iter().map(|v| v * v).sum::<f32>().sqrt()
}

impl EmbeddingIndex {
    /// Creates an empty index over `dim`-dimensional embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Builds an index from parallel embedding/label slices, inferring the
    /// dimension from the first embedding. For a possibly-empty corpus use
    /// [`EmbeddingIndex::from_embeddings_dim`], which cannot panic on
    /// emptiness.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, or hold ragged
    /// embeddings.
    pub fn from_embeddings(embeddings: &[Vec<f32>], labels: &[usize]) -> Self {
        let dim = embeddings
            .first()
            // g4check: allow(unwrap-in-lib): the empty-set panic is this constructor's documented contract; from_embeddings_dim is the non-panicking form
            .expect("cannot infer dimension from an empty set; use from_embeddings_dim")
            .len();
        Self::from_embeddings_dim(dim, embeddings, labels)
    }

    /// Builds an index of explicit dimension `dim` from parallel
    /// embedding/label slices — the empty-corpus-safe form of
    /// [`EmbeddingIndex::from_embeddings`].
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero, the slices differ in length, or any
    /// embedding disagrees with `dim`.
    pub fn from_embeddings_dim(dim: usize, embeddings: &[Vec<f32>], labels: &[usize]) -> Self {
        assert_eq!(embeddings.len(), labels.len(), "embeddings/labels mismatch");
        let mut index = Self::new(dim);
        for (e, &l) in embeddings.iter().zip(labels) {
            index.insert(e, l);
        }
        index
    }

    /// Number of indexed embeddings.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Labels in insertion order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Appends one embedding (normalized on the way in). Embeddings with a
    /// NaN/inf component, like zero-norm ones, are stored as zero rows and
    /// score 0 against every query — they can never corrupt top-k order.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn insert(&mut self, embedding: &[f32], label: usize) {
        assert_eq!(
            embedding.len(),
            self.dim,
            "embedding dimension {} != index dimension {}",
            embedding.len(),
            self.dim
        );
        normalize_into(embedding, &mut self.data);
        self.labels.push(label);
    }

    /// The stored (normalized) row at insertion index `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn normalized_row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The `k` nearest neighbors of `query` by cosine similarity, highest
    /// first (ties broken by insertion index). Returns fewer than `k` hits
    /// only when the index holds fewer entries; `k == 0` (like an empty
    /// index) yields an empty hit list rather than being an error. A query
    /// with a NaN/inf component is treated like a zero query: every score
    /// is 0.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<QueryHit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        if k == 0 {
            return Vec::new();
        }
        let qnorm = query_norm(query);
        let mut hits: Vec<QueryHit> = (0..self.len())
            .map(|i| QueryHit {
                index: i,
                label: self.labels[i],
                score: score_row(self.normalized_row(i), query, qnorm),
            })
            .collect();
        let k = k.min(hits.len());
        if k < hits.len() {
            hits.select_nth_unstable_by(k, Self::rank);
            hits.truncate(k);
        }
        hits.sort_unstable_by(Self::rank);
        hits
    }

    /// Total order on hits: score descending, insertion index ascending.
    /// Scores are always finite (non-finite inputs are zeroed on insert and
    /// query), so the `partial_cmp` fallback is unreachable in practice —
    /// it remains only as a belt against future score sources.
    pub(crate) fn rank(a: &QueryHit, b: &QueryHit) -> std::cmp::Ordering {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.index.cmp(&b.index))
    }

    /// The full `n x n` cosine-similarity Gram matrix, computed as one
    /// blocked `E · Eᵀ` product over the normalized embedding matrix.
    pub fn pairwise_similarity(&self) -> Matrix {
        let e = Matrix::from_vec(self.len(), self.dim, self.data.clone());
        e.matmul_nt(&e)
    }

    /// Mean precision@k of same-label retrieval over the indexed points:
    /// for each entry, the fraction of its `k` nearest neighbors (excluding
    /// itself) that share its label, averaged over all entries.
    ///
    /// Computed from one blocked Gram matrix rather than per-query scans.
    /// `k` is clamped to `len() - 1` (each point has only that many
    /// neighbors); an index with fewer than two points has no neighborhoods
    /// at all and reports 0.0 instead of aborting small-corpus callers.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn precision_at_k(&self, k: usize) -> f64 {
        assert!(k > 0, "k must be positive");
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let k = k.min(n - 1);
        let sims = self.pairwise_similarity();
        let mut total = 0.0f64;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for q in 0..n {
            let row = sims.row(q);
            order.clear();
            order.extend((0..n).filter(|&j| j != q));
            order.select_nth_unstable_by(k - 1, |&a, &b| {
                row[b]
                    .partial_cmp(&row[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let hits = order[..k]
                .iter()
                .filter(|&&j| self.labels[j] == self.labels[q])
                .count();
            total += hits as f64 / k as f64;
        }
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered() -> EmbeddingIndex {
        let mut idx = EmbeddingIndex::new(3);
        for i in 0..5 {
            idx.insert(&[1.0, 0.0, 0.001 * i as f32], 0);
            idx.insert(&[0.0, 1.0, 0.001 * i as f32], 1);
        }
        idx
    }

    #[test]
    fn query_returns_sorted_same_cluster_hits() {
        let idx = clustered();
        let hits = idx.query(&[2.0, 0.1, 0.0], 4);
        assert_eq!(hits.len(), 4);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(hits.iter().all(|h| h.label == 0));
    }

    #[test]
    fn query_scores_match_plain_cosine() {
        let mut idx = EmbeddingIndex::new(2);
        idx.insert(&[3.0, 4.0], 7); // normalizes to [0.6, 0.8]
        let hits = idx.query(&[1.0, 0.0], 1);
        assert_eq!(hits[0].index, 0);
        assert_eq!(hits[0].label, 7);
        assert!((hits[0].score - 0.6).abs() < 1e-6);
    }

    #[test]
    fn query_handles_small_index_and_zero_query() {
        let mut idx = EmbeddingIndex::new(2);
        idx.insert(&[1.0, 0.0], 0);
        assert_eq!(idx.query(&[1.0, 0.0], 5).len(), 1);
        let zero_hits = idx.query(&[0.0, 0.0], 1);
        assert_eq!(zero_hits[0].score, 0.0);
    }

    #[test]
    fn zero_norm_entries_score_zero() {
        let mut idx = EmbeddingIndex::new(2);
        idx.insert(&[0.0, 0.0], 0);
        idx.insert(&[1.0, 0.0], 1);
        let hits = idx.query(&[1.0, 0.0], 2);
        assert_eq!(hits[0].label, 1);
        assert_eq!(hits[1].score, 0.0);
    }

    #[test]
    fn pairwise_similarity_is_symmetric_with_unit_diagonal() {
        let idx = clustered();
        let s = idx.pairwise_similarity();
        assert_eq!(s.shape(), (10, 10));
        assert!(s.approx_eq(&s.transpose(), 1e-5));
        for i in 0..10 {
            assert!((s.get(i, i) - 1.0).abs() < 1e-5, "diag {i}");
        }
    }

    #[test]
    fn precision_at_k_is_perfect_for_pure_clusters() {
        let idx = clustered();
        assert!(idx.precision_at_k(3) > 0.99);
    }

    #[test]
    fn incremental_insert_matches_bulk_build() {
        let embeddings: Vec<Vec<f32>> = (0..6)
            .map(|i| vec![(i % 3) as f32 + 1.0, (i % 2) as f32, 0.5])
            .collect();
        let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let bulk = EmbeddingIndex::from_embeddings(&embeddings, &labels);
        let mut inc = EmbeddingIndex::new(3);
        for (e, &l) in embeddings.iter().zip(&labels) {
            inc.insert(e, l);
        }
        assert_eq!(bulk, inc);
    }

    #[test]
    fn non_finite_rows_are_zeroed_and_cannot_corrupt_topk() {
        let mut idx = EmbeddingIndex::new(2);
        idx.insert(&[f32::NAN, 1.0], 0);
        idx.insert(&[1.0, 0.0], 1);
        idx.insert(&[f32::INFINITY, f32::NEG_INFINITY], 2);
        idx.insert(&[0.8, 0.1], 3);
        // the finite rows must rank first with finite scores; the poisoned
        // rows sink to the bottom with exactly 0.0
        let hits = idx.query(&[1.0, 0.0], 4);
        assert_eq!(hits[0].label, 1);
        assert_eq!(hits[1].label, 3);
        assert!(hits.iter().all(|h| h.score.is_finite()));
        assert_eq!(hits[2].score, 0.0);
        assert_eq!(hits[3].score, 0.0);
        // regression: rank() must see no NaN, so top-k of a truncated query
        // is exactly the global best, not an arbitrary survivor
        let top = idx.query(&[1.0, 0.0], 1);
        assert_eq!(top[0].label, 1);
    }

    #[test]
    fn non_finite_query_scores_zero_everywhere() {
        let mut idx = EmbeddingIndex::new(2);
        idx.insert(&[1.0, 0.0], 0);
        idx.insert(&[0.0, 1.0], 1);
        for q in [[f32::NAN, 1.0], [f32::INFINITY, 0.0], [1.0, f32::NAN]] {
            let hits = idx.query(&q, 2);
            assert!(hits.iter().all(|h| h.score == 0.0), "query {q:?}");
            // ties broken by insertion order, deterministically
            assert_eq!(hits[0].index, 0);
            assert_eq!(hits[1].index, 1);
        }
    }

    #[test]
    fn huge_query_norm_falls_back_to_zero_scores() {
        let mut idx = EmbeddingIndex::new(2);
        idx.insert(&[1.0, 0.0], 0);
        // norm overflows f32 -> treated as a zero query, not NaN scores
        let hits = idx.query(&[f32::MAX, f32::MAX], 1);
        assert_eq!(hits[0].score, 0.0);
    }

    #[test]
    fn from_embeddings_dim_accepts_an_empty_corpus() {
        let idx = EmbeddingIndex::from_embeddings_dim(4, &[], &[]);
        assert!(idx.is_empty());
        assert_eq!(idx.dim(), 4);
        assert!(idx.query(&[1.0, 0.0, 0.0, 0.0], 3).is_empty());
        assert_eq!(idx.precision_at_k(5), 0.0);
    }

    #[test]
    fn precision_at_k_clamps_k_to_available_neighbors() {
        let idx = clustered(); // 10 points
                               // k = 100 clamps to 9 neighbors per point instead of panicking
        let clamped = idx.precision_at_k(100);
        assert_eq!(clamped, idx.precision_at_k(9));
        // a singleton index has no neighborhoods at all
        let mut single = EmbeddingIndex::new(2);
        single.insert(&[1.0, 0.0], 0);
        assert_eq!(single.precision_at_k(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn insert_rejects_wrong_dimension() {
        EmbeddingIndex::new(3).insert(&[1.0], 0);
    }

    #[test]
    fn zero_k_query_returns_empty() {
        // regression: k == 0 used to panic; a "report nothing" query is a
        // legitimate degenerate request and must return an empty hit list
        let mut idx = EmbeddingIndex::new(1);
        idx.insert(&[1.0], 0);
        assert!(idx.query(&[1.0], 0).is_empty());
        // and on an empty index too
        assert!(EmbeddingIndex::new(1).query(&[1.0], 0).is_empty());
    }
}
