//! Similarity-score aggregation for Tables II and III.

/// One named score row (e.g. "AES vs FPA: -0.20").
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRow {
    /// Pair description, e.g. `"AES / FPA"` or `"c432 vs obfuscated"`.
    pub label: String,
    /// Similarity score(s) backing the row.
    pub scores: Vec<f32>,
}

impl ScoreRow {
    /// Creates a row.
    pub fn new(label: impl Into<String>, scores: Vec<f32>) -> Self {
        Self {
            label: label.into(),
            scores,
        }
    }

    /// Mean score of the row.
    pub fn mean(&self) -> f32 {
        if self.scores.is_empty() {
            return f32::NAN;
        }
        self.scores.iter().sum::<f32>() / self.scores.len() as f32
    }
}

/// A named collection of score rows (one of the paper's score tables or a
/// case column of Table II).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScoreTable {
    /// Table / case title.
    pub title: String,
    /// Rows in display order.
    pub rows: Vec<ScoreRow>,
}

impl ScoreTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, scores: Vec<f32>) {
        self.rows.push(ScoreRow::new(label, scores));
    }

    /// Mean over every score in every row (the paper's per-case "Mean" line).
    pub fn grand_mean(&self) -> f32 {
        let all: Vec<f32> = self.rows.iter().flat_map(|r| r.scores.clone()).collect();
        if all.is_empty() {
            return f32::NAN;
        }
        all.iter().sum::<f32>() / all.len() as f32
    }

    /// Renders as an aligned text table (rows, means, grand mean).
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        let width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        for row in &self.rows {
            out.push_str(&format!(
                "  {:<width$}  {:+.4}  (n={})\n",
                row.label,
                row.mean(),
                row.scores.len(),
            ));
        }
        out.push_str(&format!(
            "  {:<width$}  {:+.4}\n",
            "Mean",
            self.grand_mean(),
        ));
        out
    }

    /// Renders as CSV (`label,mean,n`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,mean,n\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{}\n",
                row.label.replace(',', ";"),
                row.mean(),
                row.scores.len()
            ));
        }
        out.push_str(&format!("mean,{:.6},\n", self.grand_mean()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_mean() {
        let r = ScoreRow::new("x", vec![0.5, 1.0, 0.0]);
        assert!((r.mean() - 0.5).abs() < 1e-6);
        assert!(ScoreRow::new("empty", vec![]).mean().is_nan());
    }

    #[test]
    fn grand_mean_pools_all_scores() {
        let mut t = ScoreTable::new("case");
        t.push("a", vec![1.0]);
        t.push("b", vec![0.0, 0.0, 0.0]);
        assert!((t.grand_mean() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn render_contains_rows_and_mean() {
        let mut t = ScoreTable::new("Case1: different designs");
        t.push("AES / FPA", vec![-0.2]);
        t.push("AES / RS232", vec![-0.5]);
        let s = t.render();
        assert!(s.contains("AES / FPA"));
        assert!(s.contains("Mean"));
        assert!(s.contains("-0.2000") || s.contains("-0.20"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = ScoreTable::new("t");
        t.push("a,b", vec![0.5]);
        assert!(t.to_csv().contains("a;b,0.5"));
    }
}
