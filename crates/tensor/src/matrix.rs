//! Dense row-major `f32` matrix used throughout the GNN stack.
//!
//! The paper's model is tiny (two GCN layers with 16 hidden units), so a
//! straightforward dense matrix with cache-friendly row-major storage is the
//! right substrate: no BLAS, no unsafe, and every op is easy to verify.

use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.matmul(&Matrix::eye(2)), m);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix whose entries are produced by `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a `1 x 1` matrix holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1 x 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs` written into a caller-provided buffer —
    /// the allocation-free inference kernel behind [`Matrix::matmul`].
    ///
    /// `out` is overwritten (it need not be zeroed) and must already have
    /// shape `self.rows() x rhs.cols()`; pair with
    /// [`Workspace`](crate::Workspace) to reuse scratch across passes.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or a mis-shaped `out`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into output shape {:?} != {}x{}",
            out.shape(),
            self.rows,
            rhs.cols
        );
        out.data.fill(0.0);
        // i-k-j loop order: the inner loop walks both `rhs` and `out` rows
        // contiguously, which matters for the ~3500-node netlist graphs.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Product against a transposed right-hand side: `self * rhs^T`, without
    /// materializing the transpose.
    ///
    /// `out[i][j] = dot(self.row(i), rhs.row(j))` — the similarity kernel:
    /// for an `n x d` embedding matrix `E`, `E.matmul_nt(&E)` is the full
    /// `n x n` cosine-similarity Gram matrix (after row normalization).
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows());
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul_nt`] into a caller-provided buffer.
    ///
    /// Blocked over row tiles of both operands so corpus-scale Gram matrices
    /// (`n` in the thousands) keep both tiles resident in cache; each inner
    /// dot product runs over two contiguous rows.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.cols()` and `out` is
    /// `self.rows() x rhs.rows()`.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.cols(),
            "matmul_nt width mismatch: {}x{} * ({}x{})^T",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows()),
            "matmul_nt_into output shape {:?} != {}x{}",
            out.shape(),
            self.rows,
            rhs.rows()
        );
        gemm_nt(&self.data, &rhs.data, self.cols, &mut out.data);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Elementwise combination of two same-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "elementwise op on mismatched shapes {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise map in place (the allocation-free sibling of
    /// [`Matrix::map`]).
    pub fn map_assign(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_assign(bias);
        out
    }

    /// Adds a `1 x cols` row vector to every row in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast_assign(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            for c in 0..self.cols {
                self.data[r * self.cols + c] += bias.data[c];
            }
        }
    }

    /// Multiplies every row `r` by the scalar `col[r]` (an `n x 1` column).
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `self.rows() x 1`.
    pub fn mul_col_broadcast(&self, col: &Matrix) -> Matrix {
        assert_eq!(col.cols, 1, "col must be a column vector");
        assert_eq!(col.rows, self.rows, "col height mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let s = col.data[r];
            for v in out.row_mut(r) {
                *v *= s;
            }
        }
        out
    }

    /// Gathers the given rows into a new matrix (in `idx` order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        self.select_rows_into(idx, &mut out);
        out
    }

    /// Gathers the given rows into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `out` is not
    /// `idx.len() x self.cols()`.
    pub fn select_rows_into(&self, idx: &[usize], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (idx.len(), self.cols),
            "select_rows_into output shape mismatch"
        );
        for (to, &from) in idx.iter().enumerate() {
            out.row_mut(to).copy_from_slice(self.row(from));
        }
    }

    /// Column-wise maximum over all rows, with the argmax row per column.
    ///
    /// Returns `(1 x cols max, argmax-row-per-column)`. Used by the
    /// max-pooling graph readout, whose backward routes gradient only to the
    /// argmax rows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no rows.
    pub fn col_max(&self) -> (Matrix, Vec<usize>) {
        assert!(self.rows > 0, "col_max on empty matrix");
        let mut max = self.row(0).to_vec();
        let mut arg = vec![0usize; self.cols];
        for r in 1..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                if v > max[c] {
                    max[c] = v;
                    arg[c] = r;
                }
            }
        }
        (Matrix::from_vec(1, self.cols, max), arg)
    }

    /// Column-wise mean over all rows (`1 x cols`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no rows.
    pub fn col_mean(&self) -> Matrix {
        assert!(self.rows > 0, "col_mean on empty matrix");
        self.col_sum().scale(1.0 / self.rows as f32)
    }

    /// Column-wise sum over all rows (`1 x cols`).
    pub fn col_sum(&self) -> Matrix {
        let mut sum = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                sum[c] += v;
            }
        }
        Matrix::from_vec(1, self.cols, sum)
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Dot product of two matrices viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "dot on mismatched shapes");
        self.data.iter().zip(&rhs.data).map(|(&a, &b)| a * b).sum()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// True when `self` and `rhs` differ by at most `tol` in every entry.
    pub fn approx_eq(&self, rhs: &Matrix, tol: f32) -> bool {
        self.shape() == rhs.shape()
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Accumulates `rhs` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Accumulates `scale * rhs` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, scale: f32) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }
}

/// Blocked `A · Bᵀ` over raw row-major slices: `out[i*bn + j] =
/// dot(a_row_i, b_row_j)` where `a` is `an x dim`, `b` is `bn x dim`, and
/// the row counts are inferred from the slice lengths.
///
/// This is [`Matrix::matmul_nt_into`] without the `Matrix` wrapper, so
/// callers that already hold contiguous row-major storage (the sharded
/// index's shard blocks, a flattened query batch) can gemm against it
/// without copying into a `Matrix` first. Each inner dot product
/// accumulates left to right over the two contiguous rows — the same
/// operation order as a scalar `iter().zip().map().sum()` dot — so one
/// entry of the output is bit-identical to scoring that row pair alone.
/// Column tiles of `b` are packed transposed so the eight output entries
/// advancing together read contiguous lanes (a scalar loop takes the
/// remainder): the independent accumulator chains vectorize and hide the
/// floating-point add latency that bounds a single gemv walk, without
/// touching any individual entry's operation order.
///
/// # Panics
///
/// Panics if `dim` is zero, either slice length is not a multiple of
/// `dim`, or `out` is not exactly `an * bn` long.
pub fn gemm_nt(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
    assert!(dim > 0, "gemm_nt dim must be positive");
    assert_eq!(a.len() % dim, 0, "gemm_nt lhs length not a multiple of dim");
    assert_eq!(b.len() % dim, 0, "gemm_nt rhs length not a multiple of dim");
    let an = a.len() / dim;
    let bn = b.len() / dim;
    assert_eq!(
        out.len(),
        an * bn,
        "gemm_nt output length {} != {an}x{bn}",
        out.len()
    );
    const BLOCK: usize = 64;
    const LANES: usize = 16;
    // bᵀ tile pack: pack[t * jw + jj] = b[(jb + jj) * dim + t]. The
    // transpose makes the LANES entries advancing together *contiguous*
    // in the inner loop, so it vectorizes as plain SIMD lanes instead of
    // one strided load per accumulator chain; one 8 KiB-per-32-dims tile
    // amortizes over every `a` row, and the 2x16 micro-kernel reuses each
    // tile load for two `a` rows.
    let mut pack = vec![0.0f32; BLOCK.min(bn) * dim];
    for jb in (0..bn).step_by(BLOCK) {
        let jmax = (jb + BLOCK).min(bn);
        let jw = jmax - jb;
        for jj in 0..jw {
            let brow = &b[(jb + jj) * dim..(jb + jj + 1) * dim];
            for (t, &v) in brow.iter().enumerate() {
                pack[t * jw + jj] = v;
            }
        }
        let mut i = 0;
        while i + 2 <= an {
            let a0 = &a[i * dim..(i + 1) * dim];
            let a1 = &a[(i + 1) * dim..(i + 2) * dim];
            let mut jj = 0;
            while jj + LANES <= jw {
                let mut s0 = [0.0f32; LANES];
                let mut s1 = [0.0f32; LANES];
                for t in 0..dim {
                    let (av0, av1) = (a0[t], a1[t]);
                    let tile = &pack[t * jw + jj..t * jw + jj + LANES];
                    for ((x0, x1), &tv) in s0.iter_mut().zip(&mut s1).zip(tile) {
                        *x0 += av0 * tv;
                        *x1 += av1 * tv;
                    }
                }
                out[i * bn + jb + jj..i * bn + jb + jj + LANES].copy_from_slice(&s0);
                out[(i + 1) * bn + jb + jj..(i + 1) * bn + jb + jj + LANES].copy_from_slice(&s1);
                jj += LANES;
            }
            while jj < jw {
                let (mut s0, mut s1) = (0.0f32, 0.0f32);
                for t in 0..dim {
                    let tv = pack[t * jw + jj];
                    s0 += a0[t] * tv;
                    s1 += a1[t] * tv;
                }
                out[i * bn + jb + jj] = s0;
                out[(i + 1) * bn + jb + jj] = s1;
                jj += 1;
            }
            i += 2;
        }
        if i < an {
            let arow = &a[i * dim..(i + 1) * dim];
            let orow = &mut out[i * bn + jb..i * bn + jmax];
            let mut jj = 0;
            while jj + LANES <= jw {
                let mut s = [0.0f32; LANES];
                for (t, &av) in arow.iter().enumerate() {
                    let tile = &pack[t * jw + jj..t * jw + jj + LANES];
                    for (sl, &tv) in s.iter_mut().zip(tile) {
                        *sl += av * tv;
                    }
                }
                orow[jj..jj + LANES].copy_from_slice(&s);
                jj += LANES;
            }
            while jj < jw {
                let mut s = 0.0f32;
                for (t, &av) in arow.iter().enumerate() {
                    s += av * pack[t * jw + jj];
                }
                orow[jj] = s;
                jj += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_eye() {
        assert_eq!(Matrix::zeros(2, 3).sum(), 0.0);
        assert_eq!(Matrix::ones(2, 3).sum(), 6.0);
        let i = Matrix::eye(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.matmul(&Matrix::eye(3)), m);
        assert_eq!(Matrix::eye(2).matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 7 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(a.sub(&b), Matrix::from_rows(&[&[-2.0, -6.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
    }

    #[test]
    fn broadcast_ops() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::from_rows(&[&[10.0, 20.0]]);
        assert_eq!(
            x.add_row_broadcast(&bias),
            Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]])
        );
        let col = Matrix::from_vec(2, 1, vec![2.0, -1.0]);
        assert_eq!(
            x.mul_col_broadcast(&col),
            Matrix::from_rows(&[&[2.0, 4.0], &[-3.0, -4.0]])
        );
    }

    #[test]
    fn select_rows_gathers_in_order() {
        let x = Matrix::from_fn(4, 2, |r, c| (r * 10 + c) as f32);
        let g = x.select_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[20.0, 21.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[20.0, 21.0]);
    }

    #[test]
    fn col_reductions() {
        let x = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0], &[2.0, 2.0]]);
        let (mx, arg) = x.col_max();
        assert_eq!(mx, Matrix::from_rows(&[&[3.0, 5.0]]));
        assert_eq!(arg, vec![1, 0]);
        assert_eq!(x.col_sum(), Matrix::from_rows(&[&[6.0, 9.0]]));
        assert!(x
            .col_mean()
            .approx_eq(&Matrix::from_rows(&[&[2.0, 3.0]]), 1e-6));
    }

    #[test]
    fn norms_and_dot() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(a.dot(&b), 11.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Matrix::zeros(1, 2);
        a.add_assign(&Matrix::from_rows(&[&[1.0, 2.0]]));
        a.add_scaled_assign(&Matrix::from_rows(&[&[1.0, 1.0]]), 0.5);
        assert_eq!(a, Matrix::from_rows(&[&[1.5, 2.5]]));
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(Matrix::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "item() requires")]
    fn item_requires_1x1() {
        let _ = Matrix::zeros(2, 1).item();
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32 - 4.0);
        let b = Matrix::from_fn(3, 7, |r, c| (r * 7 + c) as f32 * 0.25 - 2.0);
        let mut out = Matrix::filled(5, 7, 99.0); // garbage must be overwritten
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    #[should_panic(expected = "matmul_into output shape")]
    fn matmul_into_rejects_wrong_shape() {
        let a = Matrix::zeros(2, 2);
        let mut out = Matrix::zeros(3, 3);
        a.matmul_into(&a.clone(), &mut out);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        // sizes straddling the 64-wide block boundary
        for (m, n, d) in [(3, 5, 4), (70, 65, 16), (1, 130, 8)] {
            let a = Matrix::from_fn(m, d, |r, c| ((r * 13 + c * 7) % 11) as f32 - 5.0);
            let b = Matrix::from_fn(n, d, |r, c| ((r * 5 + c * 3) % 9) as f32 - 4.0);
            let fast = a.matmul_nt(&b);
            let slow = a.matmul(&b.transpose());
            assert!(fast.approx_eq(&slow, 1e-4), "mismatch at {m}x{n}x{d}");
        }
    }

    #[test]
    #[should_panic(expected = "matmul_nt width mismatch")]
    fn matmul_nt_rejects_width_mismatch() {
        let _ = Matrix::zeros(2, 3).matmul_nt(&Matrix::zeros(2, 4));
    }

    #[test]
    fn gemm_nt_entries_are_bit_identical_to_scalar_dots() {
        // straddle the 64-row block boundary on both operands
        for (m, n, d) in [(3, 5, 4), (70, 65, 16), (1, 130, 8)] {
            let a: Vec<f32> = (0..m * d)
                .map(|i| ((i * 13) % 11) as f32 / 7.0 - 0.5)
                .collect();
            let b: Vec<f32> = (0..n * d)
                .map(|i| ((i * 5) % 9) as f32 / 3.0 - 1.0)
                .collect();
            let mut out = vec![0.0f32; m * n];
            gemm_nt(&a, &b, d, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let dot: f32 = a[i * d..(i + 1) * d]
                        .iter()
                        .zip(&b[j * d..(j + 1) * d])
                        .map(|(&x, &y)| x * y)
                        .sum();
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        dot.to_bits(),
                        "entry ({i},{j}) of {m}x{n}x{d} not bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "gemm_nt output length")]
    fn gemm_nt_rejects_bad_output_length() {
        let mut out = vec![0.0f32; 3];
        gemm_nt(&[1.0, 2.0], &[3.0, 4.0], 2, &mut out);
    }

    #[test]
    fn map_assign_matches_map() {
        let m = Matrix::from_rows(&[&[-1.0, 2.0], &[3.0, -4.0]]);
        let mut inplace = m.clone();
        inplace.map_assign(|v| v.max(0.0));
        assert_eq!(inplace, m.map(|v| v.max(0.0)));
    }

    #[test]
    fn add_row_broadcast_assign_matches_copy() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let bias = Matrix::from_rows(&[&[10.0, -1.0]]);
        let mut inplace = m.clone();
        inplace.add_row_broadcast_assign(&bias);
        assert_eq!(inplace, m.add_row_broadcast(&bias));
    }

    #[test]
    fn select_rows_into_matches_select_rows() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 10 + c) as f32);
        let mut out = Matrix::ones(3, 3);
        m.select_rows_into(&[3, 0, 3], &mut out);
        assert_eq!(out, m.select_rows(&[3, 0, 3]));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::ones(1, 2);
        assert!(m.is_finite());
        m.set(0, 1, f32::NAN);
        assert!(!m.is_finite());
    }
}
