//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records every operation of a forward pass; [`Tape::backward`]
//! replays the tape in reverse, producing gradients with respect to every
//! recorded variable. Each operation captures (clones of) the values it needs
//! for its backward rule at construction time, so the backward pass never
//! re-borrows the tape — a deliberately simple design that the paper's small
//! model (2 GCN layers x 16 units) makes affordable.
//!
//! # Examples
//!
//! ```
//! use gnn4ip_tensor::{Matrix, Tape};
//!
//! let tape = Tape::new();
//! let x = tape.input(Matrix::scalar(3.0));
//! let y = x.hadamard(x); // y = x^2
//! let grads = tape.backward(y);
//! assert_eq!(grads.wrt(x).expect("x participates").item(), 6.0); // dy/dx = 2x
//! ```

use std::cell::RefCell;

use crate::{CsrMatrix, Matrix};

type BackwardFn = Box<dyn Fn(&Matrix) -> Vec<(usize, Matrix)>>;

struct TapeNode {
    value: Matrix,
    backward: Option<BackwardFn>,
}

/// A recording of a differentiable computation.
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<TapeNode>>,
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.borrow().len())
    }
}

/// A handle to a value recorded on a [`Tape`].
///
/// `Var` is `Copy`; it is just an index plus a tape reference. All arithmetic
/// methods record a new node and return its handle.
#[derive(Copy, Clone)]
pub struct Var<'t> {
    tape: &'t Tape,
    idx: usize,
}

impl std::fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Var(#{}, {:?})", self.idx, self.shape())
    }
}

/// Gradients produced by [`Tape::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// The gradient with respect to `v`, or `None` if `v` did not participate
    /// in the differentiated value.
    pub fn wrt(&self, v: Var<'_>) -> Option<&Matrix> {
        self.grads.get(v.idx).and_then(|g| g.as_ref())
    }

    /// The gradient with respect to `v`, or an all-zero matrix of `v`'s shape.
    pub fn wrt_or_zero(&self, v: Var<'_>) -> Matrix {
        match self.wrt(v) {
            Some(g) => g.clone(),
            None => {
                let (r, c) = v.shape();
                Matrix::zeros(r, c)
            }
        }
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, value: Matrix, backward: Option<BackwardFn>) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(TapeNode { value, backward });
        Var {
            tape: self,
            idx: nodes.len() - 1,
        }
    }

    /// Records a leaf (input or parameter) value.
    pub fn input(&self, value: Matrix) -> Var<'_> {
        self.push(value, None)
    }

    /// Runs reverse-mode differentiation from `root`.
    ///
    /// The seed gradient is all-ones of `root`'s shape, so for a `1 x 1` loss
    /// this computes ordinary gradients.
    pub fn backward(&self, root: Var<'_>) -> Gradients {
        let nodes = self.nodes.borrow();
        let mut grads: Vec<Option<Matrix>> = Vec::with_capacity(nodes.len());
        grads.resize_with(nodes.len(), || None);
        let (r, c) = nodes[root.idx].value.shape();
        grads[root.idx] = Some(Matrix::ones(r, c));
        for i in (0..=root.idx).rev() {
            let Some(g) = grads[i].clone() else { continue };
            if let Some(bw) = &nodes[i].backward {
                for (pidx, pg) in bw(&g) {
                    debug_assert!(pidx < i, "backward edge must point to an earlier node");
                    match &mut grads[pidx] {
                        Some(acc) => acc.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
        }
        Gradients { grads }
    }
}

impl<'t> Var<'t> {
    /// A clone of the recorded value.
    pub fn value(&self) -> Matrix {
        self.tape.nodes.borrow()[self.idx].value.clone()
    }

    /// `(rows, cols)` of the recorded value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.nodes.borrow()[self.idx].value.shape()
    }

    /// The scalar of a `1 x 1` variable.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `1 x 1`.
    pub fn item(&self) -> f32 {
        self.tape.nodes.borrow()[self.idx].value.item()
    }

    fn unary(self, value: Matrix, bw: impl Fn(&Matrix) -> Matrix + 'static) -> Var<'t> {
        let src = self.idx;
        self.tape
            .push(value, Some(Box::new(move |g| vec![(src, bw(g))])))
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(self, rhs: Var<'t>) -> Var<'t> {
        let a = self.value();
        let b = rhs.value();
        let out = a.matmul(&b);
        let (ai, bi) = (self.idx, rhs.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g| {
                vec![
                    (ai, g.matmul(&b.transpose())),
                    (bi, a.transpose().matmul(g)),
                ]
            })),
        )
    }

    /// Sparse-dense product `adj * self` (message propagation of Eq. 5).
    ///
    /// The adjacency is a constant (no gradient flows into it).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn spmm(self, adj: &CsrMatrix) -> Var<'t> {
        let out = adj.spmm(&self.value());
        let adj_t = adj.transpose();
        self.unary(out, move |g| adj_t.spmm(g))
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[allow(clippy::should_implement_trait)] // tape ops consume `self` and return a new Var
    pub fn add(self, rhs: Var<'t>) -> Var<'t> {
        let out = self.value().add(&rhs.value());
        let (ai, bi) = (self.idx, rhs.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g| vec![(ai, g.clone()), (bi, g.clone())])),
        )
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[allow(clippy::should_implement_trait)] // tape ops consume `self` and return a new Var
    pub fn sub(self, rhs: Var<'t>) -> Var<'t> {
        let out = self.value().sub(&rhs.value());
        let (ai, bi) = (self.idx, rhs.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g| {
                vec![(ai, g.clone()), (bi, g.scale(-1.0))]
            })),
        )
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(self, rhs: Var<'t>) -> Var<'t> {
        let a = self.value();
        let b = rhs.value();
        let out = a.hadamard(&b);
        let (ai, bi) = (self.idx, rhs.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g| {
                vec![(ai, g.hadamard(&b)), (bi, g.hadamard(&a))]
            })),
        )
    }

    /// Scales every entry by the constant `s`.
    pub fn scale(self, s: f32) -> Var<'t> {
        let out = self.value().scale(s);
        self.unary(out, move |g| g.scale(s))
    }

    /// Adds the constant `c` to every entry.
    pub fn add_scalar(self, c: f32) -> Var<'t> {
        let out = self.value().map(|v| v + c);
        self.unary(out, |g| g.clone())
    }

    /// Computes `c - self` for a constant `c`.
    pub fn rsub_scalar(self, c: f32) -> Var<'t> {
        let out = self.value().map(|v| c - v);
        self.unary(out, |g| g.scale(-1.0))
    }

    /// Adds a `1 x cols` bias row to every row.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_bias(self, bias: Var<'t>) -> Var<'t> {
        let out = self.value().add_row_broadcast(&bias.value());
        let (xi, bi) = (self.idx, bias.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g| vec![(xi, g.clone()), (bi, g.col_sum())])),
        )
    }

    /// Rectified linear unit.
    pub fn relu(self) -> Var<'t> {
        let x = self.value();
        let out = x.map(|v| v.max(0.0));
        self.unary(out, move |g| {
            g.zip_with(&x, |gv, xv| if xv > 0.0 { gv } else { 0.0 })
        })
    }

    /// Hyperbolic tangent (used as the attention activation in SAGPool).
    pub fn tanh(self) -> Var<'t> {
        let out = self.value().map(f32::tanh);
        let y = out.clone();
        self.unary(out, move |g| g.zip_with(&y, |gv, yv| gv * (1.0 - yv * yv)))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(self) -> Var<'t> {
        let out = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let y = out.clone();
        self.unary(out, move |g| g.zip_with(&y, |gv, yv| gv * yv * (1.0 - yv)))
    }

    /// Inverted-dropout with keep-probability `1 - p`, using the caller's
    /// mask. Entries where `mask` is `false` are zeroed; survivors are scaled
    /// by `1 / (1 - p)` so the expectation is unchanged.
    ///
    /// The mask is supplied (rather than drawn here) so training code owns
    /// the RNG; see `dropout_mask` for the standard way to draw one.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len()` differs from the number of entries or if
    /// `p >= 1.0`.
    pub fn dropout(self, mask: &[bool], p: f32) -> Var<'t> {
        assert!(p < 1.0, "dropout probability must be < 1");
        let x = self.value();
        assert_eq!(mask.len(), x.len(), "dropout mask length mismatch");
        let scale = 1.0 / (1.0 - p);
        let keep: Vec<f32> = mask.iter().map(|&k| if k { scale } else { 0.0 }).collect();
        let (r, c) = x.shape();
        let keep = Matrix::from_vec(r, c, keep);
        let out = x.hadamard(&keep);
        self.unary(out, move |g| g.hadamard(&keep))
    }

    /// Gathers rows `idx` into a new matrix (differentiable gather).
    ///
    /// The backward pass scatter-adds gradients into the source rows. With a
    /// one-hot feature matrix, `W.select_rows(kinds)` *is* `X · W`, which is
    /// how the GCN input layer avoids materializing `X`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select_rows(self, idx: &[usize]) -> Var<'t> {
        let x = self.value();
        let out = x.select_rows(idx);
        let idx = idx.to_vec();
        let (rows, cols) = x.shape();
        self.unary(out, move |g| {
            let mut gx = Matrix::zeros(rows, cols);
            for (from, &to) in idx.iter().enumerate() {
                let src = g.row(from).to_vec();
                let dst = gx.row_mut(to);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
            gx
        })
    }

    /// Multiplies every row `r` by the scalar `col[r]` (an `n x 1` column
    /// variable) — the `X_pool = X[idx] ⊙ α[idx]` step of SAGPool.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul_col(self, col: Var<'t>) -> Var<'t> {
        let x = self.value();
        let a = col.value();
        let out = x.mul_col_broadcast(&a);
        let (xi, ci) = (self.idx, col.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g| {
                let gx = g.mul_col_broadcast(&a);
                let mut gc = Matrix::zeros(a.rows(), 1);
                for r in 0..a.rows() {
                    let s: f32 = g
                        .row(r)
                        .iter()
                        .zip(x.row(r))
                        .map(|(&gv, &xv)| gv * xv)
                        .sum();
                    gc.set(r, 0, s);
                }
                vec![(xi, gx), (ci, gc)]
            })),
        )
    }

    /// Column-wise max readout (`n x c` → `1 x c`).
    ///
    /// Gradient is routed only to the argmax row of each column.
    ///
    /// # Panics
    ///
    /// Panics if the variable has no rows.
    pub fn readout_max(self) -> Var<'t> {
        let x = self.value();
        let (out, arg) = x.col_max();
        let (rows, cols) = x.shape();
        self.unary(out, move |g| {
            let mut gx = Matrix::zeros(rows, cols);
            for (c, &r) in arg.iter().enumerate() {
                gx.set(r, c, g.get(0, c));
            }
            gx
        })
    }

    /// Column-wise mean readout (`n x c` → `1 x c`).
    ///
    /// # Panics
    ///
    /// Panics if the variable has no rows.
    pub fn readout_mean(self) -> Var<'t> {
        let x = self.value();
        let out = x.col_mean();
        let (rows, cols) = x.shape();
        let inv = 1.0 / rows as f32;
        self.unary(out, move |g| {
            let mut gx = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    gx.set(r, c, g.get(0, c) * inv);
                }
            }
            gx
        })
    }

    /// Column-wise sum readout (`n x c` → `1 x c`).
    pub fn readout_sum(self) -> Var<'t> {
        let x = self.value();
        let out = x.col_sum();
        let (rows, cols) = x.shape();
        self.unary(out, move |g| {
            let mut gx = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    gx.set(r, c, g.get(0, c));
                }
            }
            gx
        })
    }

    /// Cosine similarity of two row vectors (`1 x c` each) → `1 x 1`.
    ///
    /// This is Eq. 6 of the paper: `Ŷ = h_a · h_b / (|h_a| |h_b|)`. A small
    /// epsilon guards against zero-norm embeddings.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not equally-shaped row vectors.
    pub fn cosine(self, rhs: Var<'t>) -> Var<'t> {
        let a = self.value();
        let b = rhs.value();
        assert_eq!(a.rows(), 1, "cosine expects row vectors");
        assert_eq!(a.shape(), b.shape(), "cosine operands must match");
        const EPS: f32 = 1e-8;
        let na = a.norm().max(EPS);
        let nb = b.norm().max(EPS);
        let dot = a.dot(&b);
        let y = dot / (na * nb);
        let (ai, bi) = (self.idx, rhs.idx);
        self.tape.push(
            Matrix::scalar(y),
            Some(Box::new(move |g| {
                let gs = g.item();
                // d y / d a = b/(na*nb) - y * a / na^2
                let ga = b.scale(1.0 / (na * nb)).sub(&a.scale(y / (na * na)));
                let gb = a.scale(1.0 / (na * nb)).sub(&b.scale(y / (nb * nb)));
                vec![(ai, ga.scale(gs)), (bi, gb.scale(gs))]
            })),
        )
    }

    /// Sums all entries into a `1 x 1` scalar.
    pub fn sum_all(self) -> Var<'t> {
        let x = self.value();
        let (rows, cols) = x.shape();
        let out = Matrix::scalar(x.sum());
        self.unary(out, move |g| Matrix::filled(rows, cols, g.item()))
    }
}

/// Draws an inverted-dropout keep mask of length `len` with drop
/// probability `p` from `rng`.
pub fn dropout_mask(len: usize, p: f32, rng: &mut impl FnMut() -> f32) -> Vec<bool> {
    (0..len).map(|_| rng() >= p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_var(tape: &Tape, v: f32) -> Var<'_> {
        tape.input(Matrix::scalar(v))
    }

    #[test]
    fn backward_through_chain() {
        let tape = Tape::new();
        let x = scalar_var(&tape, 2.0);
        // y = (3x)^2 = 9 x^2; dy/dx = 18x = 36
        let y = x.scale(3.0);
        let z = y.hadamard(y);
        let grads = tape.backward(z);
        assert_eq!(grads.wrt(x).expect("grad x").item(), 36.0);
    }

    #[test]
    fn matmul_gradients() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = tape.input(Matrix::from_rows(&[&[3.0], &[4.0]]));
        let y = a.matmul(b); // 1x1 = 11
        assert_eq!(y.item(), 11.0);
        let grads = tape.backward(y);
        assert_eq!(
            grads.wrt(a).expect("grad a"),
            &Matrix::from_rows(&[&[3.0, 4.0]])
        );
        assert_eq!(
            grads.wrt(b).expect("grad b"),
            &Matrix::from_rows(&[&[1.0], &[2.0]])
        );
    }

    #[test]
    fn relu_masks_gradient() {
        let tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[-1.0, 2.0]]));
        let y = x.relu().sum_all();
        let grads = tape.backward(y);
        assert_eq!(
            grads.wrt(x).expect("grad"),
            &Matrix::from_rows(&[&[0.0, 1.0]])
        );
    }

    #[test]
    fn add_bias_reduces_over_rows() {
        let tape = Tape::new();
        let x = tape.input(Matrix::zeros(3, 2));
        let b = tape.input(Matrix::zeros(1, 2));
        let y = x.add_bias(b).sum_all();
        let grads = tape.backward(y);
        assert_eq!(
            grads.wrt(b).expect("grad b"),
            &Matrix::from_rows(&[&[3.0, 3.0]])
        );
    }

    #[test]
    fn select_rows_scatters_gradient() {
        let tape = Tape::new();
        let x = tape.input(Matrix::from_fn(3, 2, |r, c| (r + c) as f32));
        let y = x.select_rows(&[2, 2]).sum_all();
        let grads = tape.backward(y);
        let g = grads.wrt(x).expect("grad");
        assert_eq!(g.row(0), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn readout_max_routes_to_argmax() {
        let tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0, 9.0], &[5.0, 2.0]]));
        let y = x.readout_max().sum_all();
        let grads = tape.backward(y);
        let g = grads.wrt(x).expect("grad");
        assert_eq!(g, &Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]));
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let b = tape.input(Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let y = a.cosine(b);
        assert!((y.item() - 1.0).abs() < 1e-6);
        // gradient of cosine at parallel vectors w.r.t. either side is ~0
        let grads = tape.backward(y);
        assert!(grads.wrt(a).expect("grad").max_abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let tape = Tape::new();
        let a = tape.input(Matrix::from_rows(&[&[1.0, 0.0]]));
        let b = tape.input(Matrix::from_rows(&[&[-2.0, 0.0]]));
        assert!((a.cosine(b).item() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn spmm_backward_uses_transpose() {
        let tape = Tape::new();
        let adj = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0)]);
        let x = tape.input(Matrix::from_rows(&[&[1.0], &[5.0]]));
        let y = x.spmm(&adj).sum_all();
        assert_eq!(y.item(), 10.0);
        let grads = tape.backward(x.spmm(&adj).sum_all());
        let g = grads.wrt(x).expect("grad");
        // d/dx1 of 2*x1 = 2 lands on row 1
        assert_eq!(g, &Matrix::from_rows(&[&[0.0], &[2.0]]));
    }

    #[test]
    fn dropout_zeroes_and_rescales() {
        let tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]));
        let mask = vec![true, false, true, false];
        let y = x.dropout(&mask, 0.5);
        assert_eq!(y.value(), Matrix::from_rows(&[&[2.0, 0.0, 2.0, 0.0]]));
        let grads = tape.backward(y.sum_all());
        assert_eq!(
            grads.wrt(x).expect("grad"),
            &Matrix::from_rows(&[&[2.0, 0.0, 2.0, 0.0]])
        );
    }

    #[test]
    fn gradients_accumulate_across_uses() {
        let tape = Tape::new();
        let x = scalar_var(&tape, 3.0);
        let y = x.add(x); // y = 2x
        let grads = tape.backward(y);
        assert_eq!(grads.wrt(x).expect("grad").item(), 2.0);
    }

    #[test]
    fn unused_variable_has_no_gradient() {
        let tape = Tape::new();
        let x = scalar_var(&tape, 1.0);
        let unused = scalar_var(&tape, 5.0);
        let grads = tape.backward(x.scale(2.0));
        assert!(grads.wrt(unused).is_none());
        assert_eq!(grads.wrt_or_zero(unused).item(), 0.0);
    }

    #[test]
    fn mul_col_gradients() {
        let tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let c = tape.input(Matrix::from_vec(2, 1, vec![2.0, -1.0]));
        let y = x.mul_col(c).sum_all();
        let grads = tape.backward(y);
        assert_eq!(
            grads.wrt(x).expect("gx"),
            &Matrix::from_rows(&[&[2.0, 2.0], &[-1.0, -1.0]])
        );
        assert_eq!(
            grads.wrt(c).expect("gc"),
            &Matrix::from_vec(2, 1, vec![3.0, 7.0])
        );
    }

    #[test]
    fn readout_mean_distributes_gradient() {
        let tape = Tape::new();
        let x = tape.input(Matrix::ones(4, 2));
        let grads = tape.backward(x.readout_mean().sum_all());
        assert!(grads
            .wrt(x)
            .expect("grad")
            .approx_eq(&Matrix::filled(4, 2, 0.25), 1e-6));
    }
}
