//! Finite-difference gradient checking.
//!
//! The autograd engine is hand-written, so every op's backward rule is
//! validated against central differences. Exposed as a library function so
//! downstream crates (e.g. the GNN layers) can grad-check whole models.

use crate::{Matrix, Tape, Var};

/// Result of a gradient check for one input.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum absolute difference between analytic and numeric gradient.
    pub max_abs_diff: f32,
    /// Maximum relative difference (normalized by magnitude, floored at 1).
    pub max_rel_diff: f32,
}

impl GradCheckReport {
    /// Whether the gradients agree within `tol` (relative).
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_diff <= tol
    }
}

/// Compares the analytic gradient of `f` at `x0` with central finite
/// differences.
///
/// `f` must build a scalar (`1 x 1`) loss on the provided tape from the given
/// input variable. The same closure is re-run for each perturbed entry, so it
/// must be deterministic (fix dropout masks etc. outside).
///
/// # Panics
///
/// Panics if `f` does not return a `1 x 1` variable.
pub fn check_gradient(
    x0: &Matrix,
    eps: f32,
    f: impl for<'t> Fn(&'t Tape, Var<'t>) -> Var<'t>,
) -> GradCheckReport {
    // Analytic gradient.
    let tape = Tape::new();
    let x = tape.input(x0.clone());
    let loss = f(&tape, x);
    assert_eq!(loss.shape(), (1, 1), "gradient check requires scalar loss");
    let grads = tape.backward(loss);
    let analytic = grads.wrt_or_zero(x);

    // Numeric gradient by central differences.
    let eval = |m: &Matrix| -> f32 {
        let t = Tape::new();
        let v = t.input(m.clone());
        f(&t, v).item()
    };
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = x0.clone();
        minus.as_mut_slice()[i] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let abs = (a - numeric).abs();
        let rel = abs / numeric.abs().max(a.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalized_adjacency, CsrMatrix};

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random values away from ReLU kinks.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
            if v.abs() < 0.05 {
                v + 0.2
            } else {
                v
            }
        })
    }

    #[test]
    fn grad_matmul() {
        let x0 = sample(3, 4, 1);
        let w = sample(4, 2, 2);
        let rep = check_gradient(&x0, EPS, |t, x| {
            let wv = t.input(w.clone());
            x.matmul(wv).sum_all()
        });
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn grad_relu_tanh_sigmoid() {
        for (i, op) in ["relu", "tanh", "sigmoid"].iter().enumerate() {
            let x0 = sample(2, 3, 10 + i as u64);
            let op = *op;
            let rep = check_gradient(&x0, EPS, move |_t, x| {
                let y = match op {
                    "relu" => x.relu(),
                    "tanh" => x.tanh(),
                    _ => x.sigmoid(),
                };
                y.sum_all()
            });
            assert!(rep.passes(TOL), "{op}: {rep:?}");
        }
    }

    #[test]
    fn grad_spmm() {
        let x0 = sample(4, 3, 20);
        let adj: CsrMatrix = normalized_adjacency(4, &[(0, 1), (1, 2), (2, 3)]);
        let rep = check_gradient(&x0, EPS, move |_t, x| x.spmm(&adj).sum_all());
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn grad_cosine() {
        let x0 = sample(1, 6, 30);
        let other = sample(1, 6, 31);
        let rep = check_gradient(&x0, 1e-3, move |t, x| {
            let b = t.input(other.clone());
            x.cosine(b)
        });
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn grad_mul_col_and_select() {
        let x0 = sample(4, 3, 40);
        let col = sample(2, 1, 41);
        let rep = check_gradient(&x0, EPS, move |t, x| {
            let c = t.input(col.clone());
            x.select_rows(&[1, 3]).mul_col(c).sum_all()
        });
        assert!(rep.passes(TOL), "{rep:?}");
    }

    #[test]
    fn grad_readouts() {
        let x0 = sample(5, 4, 50);
        for (i, ro) in ["max", "mean", "sum"].iter().enumerate() {
            let ro = *ro;
            let x0 = x0.clone();
            let _ = i;
            let rep = check_gradient(&x0, 1e-3, move |_t, x| match ro {
                "max" => x.readout_max().sum_all(),
                "mean" => x.readout_mean().sum_all(),
                _ => x.readout_sum().sum_all(),
            });
            assert!(rep.passes(TOL), "{ro}: {rep:?}");
        }
    }

    #[test]
    fn grad_composite_gcn_like_layer() {
        // relu(Â x W + b) summed — a full GCN layer.
        let x0 = sample(4, 3, 60);
        let w = sample(3, 5, 61);
        let b = sample(1, 5, 62);
        let adj = normalized_adjacency(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let rep = check_gradient(&x0, EPS, move |t, x| {
            let wv = t.input(w.clone());
            let bv = t.input(b.clone());
            x.spmm(&adj).matmul(wv).add_bias(bv).relu().sum_all()
        });
        assert!(rep.passes(TOL), "{rep:?}");
    }
}
