//! Compressed sparse row (CSR) matrices for graph adjacency operators.
//!
//! DFGs extracted from netlists average ~3500 nodes; a dense `n x n`
//! adjacency would be ~49 MB per graph. GCN message propagation (Eq. 5 of the
//! paper) only needs `Â · X`, so a CSR product against the dense feature
//! matrix is both the faithful and the practical representation.

use crate::Matrix;

/// A sparse matrix in compressed sparse row format.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::{CsrMatrix, Matrix};
///
/// // 2x2 matrix [[0, 1], [2, 0]]
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 2.0)]);
/// let x = Matrix::from_rows(&[&[1.0], &[10.0]]);
/// assert_eq!(m.spmm(&x), Matrix::from_rows(&[&[10.0], &[2.0]]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed. Zero-valued triplets are kept (they
    /// are harmless and preserve explicit structure).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of bounds for {rows}x{cols}"
            );
        }
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<f32> = Vec::with_capacity(sorted.len());
        let mut row_of: Vec<usize> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            if row_of.last() == Some(&r) && indices.last() == Some(&c) {
                // g4check: allow(unwrap-in-lib): values grows in lockstep with indices, whose last() the guard just matched
                *values.last_mut().expect("values nonempty when merging") += v;
            } else {
                row_of.push(r);
                indices.push(c);
                values.push(v);
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        for &r in &row_of {
            indptr[r + 1] += 1;
        }
        for i in 0..rows {
            indptr[i + 1] += indptr[i];
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over `(row, col, value)` of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.indptr[r]..self.indptr[r + 1]).map(move |i| (r, self.indices[i], self.values[i]))
        })
    }

    /// Sparse-dense product `self * dense`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        self.spmm_into(dense, &mut out);
        out
    }

    /// Sparse-dense product `self * dense` written into a caller-provided
    /// buffer — the allocation-free inference kernel behind
    /// [`CsrMatrix::spmm`]. `out` is overwritten (it need not be zeroed).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or a mis-shaped `out`.
    pub fn spmm_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm dimension mismatch: {}x{} * {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        assert_eq!(
            out.shape(),
            (self.rows, dense.cols()),
            "spmm_into output shape {:?} != {}x{}",
            out.shape(),
            self.rows,
            dense.cols()
        );
        out.as_mut_slice().fill(0.0);
        for r in 0..self.rows {
            for i in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[i];
                let v = self.values[i];
                let src = dense.row(c);
                let dst = out.row_mut(r);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += v * s;
                }
            }
        }
    }

    /// Transposed copy (CSR of the transpose).
    pub fn transpose(&self) -> CsrMatrix {
        let triples: Vec<(usize, usize, f32)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triples)
    }

    /// Densifies into a [`Matrix`] (tests / small graphs only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m.set(r, c, m.get(r, c) + v);
        }
        m
    }

    /// Extracts the square submatrix on the given node subset.
    ///
    /// `idx[i]` is the original index of new node `i`. Entries whose row or
    /// column fall outside `idx` are dropped — this is the `A_pool = A[idx,
    /// idx]` step of self-attention graph pooling.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or an index is out of bounds.
    pub fn select_square(&self, idx: &[usize]) -> CsrMatrix {
        assert_eq!(
            self.rows, self.cols,
            "select_square requires a square matrix"
        );
        let mut pos = vec![usize::MAX; self.rows];
        for (new, &old) in idx.iter().enumerate() {
            assert!(old < self.rows, "index {old} out of bounds");
            pos[old] = new;
        }
        let triples: Vec<(usize, usize, f32)> = self
            .iter()
            .filter_map(|(r, c, v)| {
                let (nr, nc) = (pos[r], pos[c]);
                (nr != usize::MAX && nc != usize::MAX).then_some((nr, nc, v))
            })
            .collect();
        CsrMatrix::from_triplets(idx.len(), idx.len(), &triples)
    }
}

/// Builds the symmetric-normalized adjacency `Â = D^-1/2 (A + I) D^-1/2`
/// of Eq. 5 (Kipf & Welling) from a directed edge list on `n` nodes.
///
/// Edges are treated as undirected for message propagation (both `(u, v)` and
/// `(v, u)` receive weight), matching GCN practice; self-loops from `I` are
/// always added so a node's own features survive each propagation step.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::normalized_adjacency;
///
/// let a = normalized_adjacency(2, &[(0, 1)]);
/// // Both nodes have degree 2 (self-loop + edge): every weight is 1/2.
/// assert!((a.to_dense().get(0, 1) - 0.5).abs() < 1e-6);
/// assert!((a.to_dense().get(0, 0) - 0.5).abs() < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if an endpoint is `>= n`.
pub fn normalized_adjacency(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
    let mut seen = std::collections::HashSet::with_capacity(edges.len() * 2 + n);
    let mut undirected: Vec<(usize, usize)> = Vec::with_capacity(edges.len() * 2 + n);
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of bounds for n={n}");
        if seen.insert((u, v)) {
            undirected.push((u, v));
        }
        if seen.insert((v, u)) {
            undirected.push((v, u));
        }
    }
    for i in 0..n {
        if seen.insert((i, i)) {
            undirected.push((i, i));
        }
    }
    let mut degree = vec![0.0f32; n];
    for &(u, _) in &undirected {
        degree[u] += 1.0;
    }
    let inv_sqrt: Vec<f32> = degree
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let triples: Vec<(usize, usize, f32)> = undirected
        .into_iter()
        .map(|(u, v)| (u, v, inv_sqrt[u] * inv_sqrt[v]))
        .collect();
    CsrMatrix::from_triplets(n, n, &triples)
}

/// Builds the row-normalized neighbor-mean operator `D^-1 A` (no self
/// loops) from a directed edge list treated as undirected — the AGGREGATE
/// step of GraphSAGE-style convolutions (mean of neighbor features).
///
/// Isolated nodes get an all-zero row (their aggregate is the zero vector).
///
/// # Panics
///
/// Panics if an endpoint is `>= n`.
pub fn mean_adjacency(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
    let mut seen = std::collections::HashSet::with_capacity(edges.len() * 2);
    let mut undirected: Vec<(usize, usize)> = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge ({u},{v}) out of bounds for n={n}");
        if u == v {
            continue;
        }
        if seen.insert((u, v)) {
            undirected.push((u, v));
        }
        if seen.insert((v, u)) {
            undirected.push((v, u));
        }
    }
    let mut degree = vec![0usize; n];
    for &(u, _) in &undirected {
        degree[u] += 1;
    }
    let triples: Vec<(usize, usize, f32)> = undirected
        .into_iter()
        .map(|(u, v)| (u, v, 1.0 / degree[u] as f32))
        .collect();
    CsrMatrix::from_triplets(n, n, &triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_matches_dense() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (2, 0, 1.0), (1, 1, -1.0)]);
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(2, 0), 1.0);
        assert_eq!(d.get(1, 1), -1.0);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.to_dense().get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let triples = [(0, 1, 2.0), (1, 0, 3.0), (1, 2, -1.0), (2, 2, 4.0)];
        let s = CsrMatrix::from_triplets(3, 3, &triples);
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 - 3.0);
        let via_sparse = s.spmm(&x);
        let via_dense = s.to_dense().matmul(&x);
        assert!(via_sparse.approx_eq(&via_dense, 1e-5));
    }

    #[test]
    fn spmm_into_matches_spmm() {
        let s = CsrMatrix::from_triplets(3, 4, &[(0, 3, 1.5), (2, 0, -2.0), (2, 3, 0.5)]);
        let x = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 - 3.0);
        let mut out = Matrix::filled(3, 2, 42.0); // garbage must be overwritten
        s.spmm_into(&x, &mut out);
        assert_eq!(out, s.spmm(&x));
    }

    #[test]
    #[should_panic(expected = "spmm_into output shape")]
    fn spmm_into_rejects_wrong_shape() {
        let s = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        let mut out = Matrix::zeros(3, 1);
        s.spmm_into(&Matrix::zeros(2, 1), &mut out);
    }

    #[test]
    fn transpose_round_trip() {
        let s = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, 1.0)]);
        let t = s.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.to_dense().get(2, 0), 5.0);
        assert_eq!(t.transpose(), s);
    }

    #[test]
    fn select_square_extracts_submatrix() {
        let s = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 0, 4.0),
                (1, 1, 9.0),
            ],
        );
        let sub = s.select_square(&[1, 2]);
        let d = sub.to_dense();
        assert_eq!(d.get(0, 1), 2.0); // old (1,2)
        assert_eq!(d.get(0, 0), 9.0); // old (1,1)
        assert_eq!(d.get(1, 0), 0.0);
    }

    #[test]
    fn normalized_adjacency_rows_are_finite_and_symmetric() {
        let a = normalized_adjacency(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let d = a.to_dense();
        assert!(d.is_finite());
        assert!(d.approx_eq(&d.transpose(), 1e-6));
        // self loops exist
        for i in 0..4 {
            assert!(d.get(i, i) > 0.0);
        }
    }

    #[test]
    fn normalized_adjacency_isolated_node() {
        let a = normalized_adjacency(2, &[]);
        let d = a.to_dense();
        // isolated node with self loop: degree 1, weight 1
        assert!((d.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn normalized_adjacency_dedups_edges() {
        let a = normalized_adjacency(2, &[(0, 1), (0, 1), (1, 0)]);
        let d = a.to_dense();
        assert!((d.get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mean_adjacency_rows_sum_to_one_or_zero() {
        let a = mean_adjacency(4, &[(0, 1), (0, 2), (1, 2)]);
        let d = a.to_dense();
        for r in 0..4 {
            let sum: f32 = (0..4).map(|c| d.get(r, c)).sum();
            assert!(
                (sum - 1.0).abs() < 1e-6 || sum == 0.0,
                "row {r} sums to {sum}"
            );
        }
        // node 3 is isolated
        assert_eq!((0..4).map(|c| d.get(3, c)).sum::<f32>(), 0.0);
        // no self loops
        for i in 0..4 {
            assert_eq!(d.get(i, i), 0.0);
        }
    }

    #[test]
    fn iter_yields_all_entries() {
        let s = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }
}
