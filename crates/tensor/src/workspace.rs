//! Reusable scratch buffers for allocation-free inference.
//!
//! The tape-backed forward pass clones every parameter onto the tape and
//! allocates a fresh matrix per operation — the right trade for training,
//! where the backward pass needs those values, but pure waste for inference.
//! A [`Workspace`] is a small pool of float and index buffers that an
//! inference pass borrows from and returns to; once the pool has seen the
//! largest graph it will serve, subsequent passes allocate nothing.

use crate::Matrix;

/// A pool of reusable scratch buffers.
///
/// [`Workspace::acquire`] hands out a zeroed [`Matrix`] backed by a recycled
/// buffer when one with enough capacity is available; [`Workspace::release`]
/// returns a matrix's storage to the pool. The pool never shrinks, so a
/// warm workspace serves steady-state traffic without touching the
/// allocator.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::Workspace;
///
/// let mut ws = Workspace::new();
/// let m = ws.acquire(4, 4);
/// ws.release(m);
/// let again = ws.acquire(2, 8); // same 16-slot buffer, no allocation
/// assert_eq!(again.shape(), (2, 8));
/// assert_eq!(ws.allocations(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    bufs: Vec<Vec<f32>>,
    idxs: Vec<Vec<usize>>,
    allocations: usize,
    acquires: usize,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a zero-filled `rows x cols` matrix from the pool.
    ///
    /// Reuses the smallest pooled buffer whose capacity suffices; falls back
    /// to growing the largest one (counted by [`Workspace::allocations`])
    /// only when none fits.
    pub fn acquire(&mut self, rows: usize, cols: usize) -> Matrix {
        self.acquires += 1;
        let need = rows * cols;
        // Best fit: the smallest pooled buffer that suffices, else the
        // largest one (it is the cheapest to grow).
        let mut best: Option<usize> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            let cap = b.capacity();
            let beats = |other: usize| match (cap >= need, other >= need) {
                (true, true) => cap < other,
                (true, false) => true,
                (false, true) => false,
                (false, false) => cap > other,
            };
            if best.is_none_or(|j| beats(self.bufs[j].capacity())) {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => self.bufs.swap_remove(i),
            None => Vec::new(),
        };
        if buf.capacity() < need {
            self.allocations += 1;
        }
        buf.clear();
        buf.resize(need, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Returns a matrix's storage to the pool for reuse.
    pub fn release(&mut self, m: Matrix) {
        self.bufs.push(m.into_vec());
    }

    /// Borrows an empty index buffer (capacity retained across uses).
    pub fn acquire_idx(&mut self) -> Vec<usize> {
        match self.idxs.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => {
                self.allocations += 1;
                Vec::new()
            }
        }
    }

    /// Returns an index buffer to the pool.
    pub fn release_idx(&mut self, v: Vec<usize>) {
        self.idxs.push(v);
    }

    /// Number of buffer (re)allocations since creation — constant once warm.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Number of `acquire`/`acquire_idx` calls served.
    pub fn acquires(&self) -> usize {
        self.acquires
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zeroed_and_shaped() {
        let mut ws = Workspace::new();
        let mut m = ws.acquire(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.sum(), 0.0);
        m.set(0, 0, 5.0);
        ws.release(m);
        // recycled buffer must come back zeroed
        let m2 = ws.acquire(3, 2);
        assert_eq!(m2.sum(), 0.0);
    }

    #[test]
    fn warm_pool_stops_allocating() {
        let mut ws = Workspace::new();
        // warm-up pass: two live buffers at once
        let a = ws.acquire(8, 8);
        let b = ws.acquire(8, 8);
        ws.release(a);
        ws.release(b);
        let after_warmup = ws.allocations();
        for _ in 0..10 {
            let a = ws.acquire(8, 8);
            let b = ws.acquire(4, 4);
            ws.release(a);
            ws.release(b);
        }
        assert_eq!(ws.allocations(), after_warmup, "warm pool re-allocated");
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let small = ws.acquire(2, 2);
        let big = ws.acquire(10, 10);
        ws.release(big);
        ws.release(small);
        // a 2x2 request must not consume the 100-slot buffer
        let m = ws.acquire(2, 2);
        assert!(m.len() == 4);
        let still_big = ws.acquire(10, 10);
        assert_eq!(still_big.shape(), (10, 10));
        assert_eq!(ws.allocations(), 2);
    }

    #[test]
    fn idx_buffers_recycle() {
        let mut ws = Workspace::new();
        let mut v = ws.acquire_idx();
        v.extend(0..100);
        ws.release_idx(v);
        let v2 = ws.acquire_idx();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 100);
    }
}
