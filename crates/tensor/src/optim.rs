//! Trainable-parameter storage and first-order optimizers.
//!
//! Parameters live outside any [`Tape`](crate::Tape): each training step
//! injects them into a fresh tape as leaves, runs forward/backward, then
//! applies an [`Optimizer`] update to the store.

use rand::Rng;

use crate::{Gradients, Matrix, Tape, Var};

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Raw index (stable for the life of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named collection of trainable matrices.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::{Matrix, ParamStore, Tape};
///
/// let mut params = ParamStore::new();
/// let w = params.add("w", Matrix::scalar(2.0));
/// let tape = Tape::new();
/// let vars = params.inject(&tape);
/// assert_eq!(vars[w.index()].item(), 2.0);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    mats: Vec<Matrix>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.mats.push(value);
        ParamId(self.mats.len() - 1)
    }

    /// Registers a parameter with Glorot-uniform initialization
    /// (`U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`).
    pub fn add_glorot(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut impl Rng,
    ) -> ParamId {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let m = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a));
        self.add(name, m)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// The current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    /// Mutable access to a parameter value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates `(name, matrix)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.names.iter().map(String::as_str).zip(self.mats.iter())
    }

    /// Iterates parameter values mutably, in registration order — the
    /// deserialization path overwrites freshly initialized weights through
    /// this without needing per-parameter ids.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut Matrix> {
        self.mats.iter_mut()
    }

    /// Records every parameter as a leaf on `tape`; element `i` of the result
    /// corresponds to `ParamId` with `index() == i`.
    pub fn inject<'t>(&self, tape: &'t Tape) -> Vec<Var<'t>> {
        self.mats.iter().map(|m| tape.input(m.clone())).collect()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.mats.iter().map(Matrix::len).sum()
    }
}

/// Per-parameter gradient accumulator for minibatch training.
///
/// One backward pass per pair keeps tape memory bounded; the accumulator sums
/// pair gradients, and the optimizer consumes the mean.
#[derive(Debug, Clone)]
pub struct GradAccum {
    sums: Vec<Matrix>,
    count: usize,
}

impl GradAccum {
    /// Creates a zeroed accumulator shaped like `params`.
    pub fn zeros_like(params: &ParamStore) -> Self {
        Self {
            sums: params
                .mats
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
            count: 0,
        }
    }

    /// Adds the gradients of one sample, reading the gradient of every
    /// injected parameter var (zero when a parameter was unused).
    ///
    /// # Panics
    ///
    /// Panics if `param_vars` does not line up with the accumulator.
    pub fn absorb(&mut self, grads: &Gradients, param_vars: &[Var<'_>]) {
        assert_eq!(
            param_vars.len(),
            self.sums.len(),
            "parameter count mismatch"
        );
        for (sum, var) in self.sums.iter_mut().zip(param_vars) {
            if let Some(g) = grads.wrt(*var) {
                sum.add_assign(g);
            }
        }
        self.count += 1;
    }

    /// Number of absorbed samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean gradients over absorbed samples (zeros when nothing absorbed).
    pub fn means(&self) -> Vec<Matrix> {
        let inv = if self.count == 0 {
            0.0
        } else {
            1.0 / self.count as f32
        };
        self.sums.iter().map(|s| s.scale(inv)).collect()
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        for s in &mut self.sums {
            *s = Matrix::zeros(s.rows(), s.cols());
        }
        self.count = 0;
    }
}

/// A first-order optimizer over a [`ParamStore`].
pub trait Optimizer {
    /// Applies one update from per-parameter gradients (aligned with
    /// `ParamId::index`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `grads` does not line up with `params`.
    fn step(&mut self, params: &mut ParamStore, grads: &[Matrix]);

    /// Replaces the learning rate — the hook LR schedules drive between
    /// epochs. Momentum/moment state is untouched.
    fn set_lr(&mut self, lr: f32);
}

/// Plain stochastic (batch) gradient descent — the paper's stated
/// "batch gradient descent algorithm with batch size 64 and learning rate
/// 0.001".
#[derive(Debug, Clone)]
pub struct Sgd {
    pub(crate) lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &[Matrix]) {
        assert_eq!(grads.len(), params.len(), "gradient count mismatch");
        for (p, g) in params.mats.iter_mut().zip(grads) {
            p.add_scaled_assign(g, -self.lr);
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) — the practical default; converges in far fewer epochs
/// than plain SGD on the cosine-embedding objective.
#[derive(Debug, Clone)]
pub struct Adam {
    pub(crate) lr: f32,
    pub(crate) beta1: f32,
    pub(crate) beta2: f32,
    pub(crate) eps: f32,
    pub(crate) t: u64,
    pub(crate) m: Vec<Matrix>,
    pub(crate) v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with the given learning rate and standard betas
    /// (0.9 / 0.999) and epsilon (1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &[Matrix]) {
        assert_eq!(grads.len(), params.len(), "gradient count mismatch");
        if self.m.is_empty() {
            self.m = grads
                .iter()
                .map(|g| Matrix::zeros(g.rows(), g.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, g) in grads.iter().enumerate() {
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            *m = m.scale(self.beta1).add(&g.scale(1.0 - self.beta1));
            *v = v
                .scale(self.beta2)
                .add(&g.hadamard(g).scale(1.0 - self.beta2));
            let mhat = m.scale(1.0 / b1t);
            let vhat = v.scale(1.0 / b2t);
            let update = mhat.zip_with(&vhat, |mh, vh| mh / (vh.sqrt() + self.eps));
            params.mats[i].add_scaled_assign(&update, -self.lr);
        }
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(params: &ParamStore, id: ParamId) -> Vec<Matrix> {
        // f(w) = sum(w^2); grad = 2w
        vec![params.get(id).scale(2.0)]
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut params = ParamStore::new();
        let id = params.add("w", Matrix::from_rows(&[&[4.0, -2.0]]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = quadratic_grad(&params, id);
            opt.step(&mut params, &g);
        }
        assert!(params.get(id).max_abs() < 1e-3);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut params = ParamStore::new();
        let id = params.add("w", Matrix::from_rows(&[&[4.0, -2.0]]));
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            let g = quadratic_grad(&params, id);
            opt.step(&mut params, &g);
        }
        assert!(params.get(id).max_abs() < 1e-2);
    }

    #[test]
    fn grad_accum_means() {
        let mut params = ParamStore::new();
        let _ = params.add("w", Matrix::scalar(1.0));
        let mut acc = GradAccum::zeros_like(&params);
        let tape = Tape::new();
        let vars = params.inject(&tape);
        let loss = vars[0].scale(3.0);
        let grads = tape.backward(loss);
        acc.absorb(&grads, &vars);
        acc.absorb(&grads, &vars);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.means()[0].item(), 3.0);
        acc.reset();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.means()[0].item(), 0.0);
    }

    #[test]
    fn glorot_init_is_bounded() {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let mut params = ParamStore::new();
        let id = params.add_glorot("w", 8, 8, &mut rng);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(params.get(id).max_abs() <= bound);
    }

    #[test]
    fn param_store_roundtrip() {
        let mut params = ParamStore::new();
        let a = params.add("alpha", Matrix::scalar(1.0));
        let b = params.add("beta", Matrix::scalar(2.0));
        assert_eq!(params.name(a), "alpha");
        assert_eq!(params.name(b), "beta");
        assert_eq!(params.len(), 2);
        assert_eq!(params.num_weights(), 2);
        let names: Vec<_> = params.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
    }
}
