//! Self-contained binary serialization for training artifacts.
//!
//! The training engine persists models, optimizer state, and embedding
//! libraries as small binary files. No external crates: the format is a
//! fixed header, little-endian payload, and a trailing content checksum.
//!
//! ## File layout
//!
//! ```text
//! offset        size  field
//! 0             4     magic  b"G4IP"
//! 4             2     format version, u16 LE (per kind; see below)
//! 6             2     kind-tag length K, u16 LE
//! 8             K     kind tag, ASCII (e.g. "hw2vec-model")
//! 8+K           …     payload (kind-specific, little-endian)
//! end-8         8     FNV-1a-64 checksum, u64 LE, over bytes [0, end-8)
//! ```
//!
//! Payload primitives: `u8`; `u32`/`u64` LE; `f32` as its LE bit pattern
//! (so values round-trip **bit-exactly**, including negative zero and
//! subnormals); strings as `u32` length + UTF-8 bytes; matrices as
//! `u64 rows`, `u64 cols`, then `rows*cols` row-major `f32`s.
//!
//! Versioning rule: readers reject unknown magic/kind outright and reject
//! versions *newer* than they understand; older versions stay readable
//! for as long as a field layout for them exists. Writers stamp the
//! version their payload layout corresponds to, so unchanged kinds stay
//! readable by older releases. Version history: v2 added precomputed
//! per-sealed-shard score bounds to the `gnn4ip-shard-index` payload —
//! that kind alone writes v2 (and recomputes the bounds when handed a v1
//! artifact); every other kind still writes the v1 layout.

use crate::optim::{Adam, Sgd};
use crate::Matrix;

/// File magic shared by every artifact kind.
pub const MAGIC: [u8; 4] = *b"G4IP";

/// Newest format version any reader accepts (and the highest
/// [`BinWriter::with_version`] allows). Writers stamp the version their
/// *payload layout* corresponds to — [`BinWriter::new`] writes v1, the
/// baseline layout every kind still uses, and only kinds whose payload
/// actually changed (currently `gnn4ip-shard-index`) opt into newer
/// versions — so artifacts stay readable by older releases for as long
/// as their layout is unchanged.
pub const FORMAT_VERSION: u16 = 2;

/// The baseline format version written by [`BinWriter::new`].
pub const BASE_VERSION: u16 = 1;

/// The central registry of every `G4IP` artifact `(kind, written
/// version)` pair produced anywhere in the workspace — the single place
/// a new kind or a version bump must be declared.
///
/// `g4check` (the `gnn4ip-analysis` lint driver) cross-checks this table
/// against the actual [`BinWriter::new`] / [`BinWriter::with_version`]
/// call sites in source *and* against the artifact-format table in the
/// README: a writer producing a pair missing here, a stale row no writer
/// produces anymore, or a README table that drifted all fail CI. That
/// makes an artifact version bump a three-line, impossible-to-forget
/// change: the writer, this table, the README row.
pub const FORMATS: &[(&str, u16)] = &[
    ("hw2vec-model", 1),
    ("engine-config", 1),
    ("gnn4ip-checkpoint", 1),
    ("gnn4ip-detector", 1),
    ("gnn4ip-library", 1),
    ("gnn4ip-shard-index", 2),
    ("gnn4ip-audit-index", 2),
    ("gnn4ip-corpus-manifest", 1),
    ("gnn4ip-corpus-shard", 1),
];

/// Streaming FNV-1a 64-bit hasher, for content ids computed over data
/// that is never materialized as one contiguous byte slice (e.g. a
/// sealed shard's labels + row payload). Feeding the same bytes in any
/// chunking produces the same hash as [`fnv1a64`] over their
/// concatenation.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::{fnv1a64, Fnv64};
///
/// let mut h = Fnv64::new();
/// h.update(b"gnn");
/// h.update(b"4ip");
/// assert_eq!(h.finish(), fnv1a64(b"gnn4ip"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The hash of everything fed so far (the hasher stays usable).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64-bit hash — the content checksum of every artifact file.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Envelope-level description of a `G4IP` artifact — the header fields
/// plus the verified content checksum, parsed without knowing the
/// payload layout. This is what `gnn4ip inspect` prints for *any*
/// artifact, including kinds newer than this build understands (the
/// version is reported, not capped, so inspect stays useful on foreign
/// files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// Kind tag, e.g. `"gnn4ip-shard-index"`.
    pub kind: String,
    /// Format version stamped in the header.
    pub version: u16,
    /// FNV-1a-64 content checksum from the trailer (verified).
    pub checksum: u64,
    /// Payload size in bytes (header and checksum excluded).
    pub payload_bytes: usize,
}

impl ArtifactInfo {
    /// Whether this exact `(kind, version)` pair appears in the
    /// [`FORMATS`] registry — i.e. some writer in this workspace
    /// produces it.
    pub fn registered(&self) -> bool {
        FORMATS.contains(&(self.kind.as_str(), self.version))
    }
}

/// Parses the envelope of any `G4IP` artifact: magic, version, kind,
/// and checksum — without interpreting the payload and without capping
/// the version.
///
/// # Errors
///
/// Returns a description of the first problem: short input, checksum
/// mismatch, wrong magic, truncated or non-UTF-8 kind tag.
pub fn describe_artifact(bytes: &[u8]) -> Result<ArtifactInfo, String> {
    if bytes.len() < MAGIC.len() + 2 + 2 + 8 {
        return Err(format!("artifact too short ({} bytes)", bytes.len()));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    // g4check: allow(unwrap-in-lib): split_at(len - 8) yields exactly 8 bytes; the length was checked above
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        ));
    }
    if body[..4] != MAGIC {
        return Err("bad magic: not a gnn4ip artifact".to_string());
    }
    let version = u16::from_le_bytes([body[4], body[5]]);
    let klen = u16::from_le_bytes([body[6], body[7]]) as usize;
    if body.len() < 8 + klen {
        return Err("truncated kind tag".to_string());
    }
    let kind = std::str::from_utf8(&body[8..8 + klen])
        .map_err(|e| format!("kind tag is not UTF-8: {e}"))?
        .to_string();
    Ok(ArtifactInfo {
        payload_bytes: body.len() - 8 - klen,
        kind,
        version,
        checksum: stored,
    })
}

/// Appends little-endian fields to an artifact buffer; [`finish`]
/// seals it with the FNV-1a checksum.
///
/// [`finish`]: BinWriter::finish
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::{BinReader, BinWriter};
///
/// let mut w = BinWriter::new("demo");
/// w.u64(7);
/// w.str("payload");
/// let bytes = w.finish();
/// let mut r = BinReader::open(&bytes, "demo")?;
/// assert_eq!(r.u64()?, 7);
/// assert_eq!(r.str()?, "payload");
/// r.done()?;
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// Starts an artifact of the given kind tag at the baseline
    /// [`BASE_VERSION`] — right for every kind whose payload layout has
    /// not changed since v1, which keeps those artifacts readable by
    /// older releases.
    ///
    /// # Panics
    ///
    /// Panics if the kind tag exceeds `u16::MAX` bytes.
    pub fn new(kind: &str) -> Self {
        Self::with_version(kind, BASE_VERSION)
    }

    /// Starts an artifact of the given kind tag at an explicit format
    /// version — for kinds whose payload layout changed after v1 (they
    /// must stamp the version their layout corresponds to) and for
    /// writing compatibility fixtures of older layouts.
    ///
    /// # Panics
    ///
    /// Panics if the kind tag exceeds `u16::MAX` bytes or `version` is 0
    /// or newer than [`FORMAT_VERSION`].
    pub fn with_version(kind: &str, version: u16) -> Self {
        assert!(
            (1..=FORMAT_VERSION).contains(&version),
            "artifact version {version} outside supported range 1..={FORMAT_VERSION}"
        );
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&version.to_le_bytes());
        // g4check: allow(unwrap-in-lib): the oversized-kind panic is this constructor's documented contract; kinds are short compile-time constants
        let k = u16::try_from(kind.len()).expect("kind tag too long");
        buf.extend_from_slice(&k.to_le_bytes());
        buf.extend_from_slice(kind.as_bytes());
        Self { buf }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn len_of(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f32` as its little-endian bit pattern (bit-exact).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u32::MAX` bytes.
    pub fn str(&mut self, s: &str) {
        // g4check: allow(unwrap-in-lib): the >4GiB-string panic is this method's documented contract
        self.u32(u32::try_from(s.len()).expect("string too long"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed raw byte blob (e.g. a nested artifact).
    pub fn bytes(&mut self, b: &[u8]) {
        self.len_of(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends a matrix: `u64 rows`, `u64 cols`, row-major `f32` data.
    pub fn matrix(&mut self, m: &Matrix) {
        self.len_of(m.rows());
        self.len_of(m.cols());
        self.buf.reserve(m.len() * 4);
        for &v in m.as_slice() {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Seals the artifact: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Reads an artifact written by [`BinWriter`], verifying magic, kind,
/// version, and checksum up front.
#[derive(Debug)]
pub struct BinReader<'a> {
    /// Payload slice (header and checksum already stripped).
    buf: &'a [u8],
    pos: usize,
    version: u16,
}

impl<'a> BinReader<'a> {
    /// Validates the envelope of `bytes` and positions the reader at the
    /// start of the payload, accepting only the baseline
    /// [`BASE_VERSION`] — right for every kind whose payload layout has
    /// not changed since v1. A reader for a kind with newer layouts must
    /// use [`BinReader::open_versioned`] with the newest version it can
    /// parse; accepting a version here and parsing it with an older
    /// field layout would misread the payload instead of rejecting it.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: short input, wrong
    /// magic, unsupported version, kind mismatch, or checksum failure.
    pub fn open(bytes: &'a [u8], expect_kind: &str) -> Result<Self, String> {
        Self::open_versioned(bytes, expect_kind, BASE_VERSION)
    }

    /// [`BinReader::open`] accepting versions up to `max_version` — the
    /// newest layout of this kind the caller knows how to parse.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: short input, wrong
    /// magic, a version newer than `max_version`, kind mismatch, or
    /// checksum failure.
    pub fn open_versioned(
        bytes: &'a [u8],
        expect_kind: &str,
        max_version: u16,
    ) -> Result<Self, String> {
        if bytes.len() < MAGIC.len() + 2 + 2 + 8 {
            return Err(format!("artifact too short ({} bytes)", bytes.len()));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        // g4check: allow(unwrap-in-lib): split_at(len - 8) yields exactly 8 bytes; the length was checked above
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            ));
        }
        if body[..4] != MAGIC {
            return Err("bad magic: not a gnn4ip artifact".to_string());
        }
        let version = u16::from_le_bytes([body[4], body[5]]);
        if version > max_version {
            return Err(format!(
                "artifact format v{version} is newer than supported v{max_version} \
                 for kind '{expect_kind}'"
            ));
        }
        let klen = u16::from_le_bytes([body[6], body[7]]) as usize;
        if body.len() < 8 + klen {
            return Err("truncated kind tag".to_string());
        }
        let kind = std::str::from_utf8(&body[8..8 + klen])
            .map_err(|e| format!("kind tag is not UTF-8: {e}"))?;
        if kind != expect_kind {
            return Err(format!(
                "artifact kind mismatch: expected '{expect_kind}', found '{kind}'"
            ));
        }
        Ok(Self {
            buf: &body[8 + klen..],
            pos: 0,
            version,
        })
    }

    /// The format version the artifact was written with.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Unread payload bytes — readers use this to bound declared sizes
    /// before allocating (the checksum is forgeable, so size fields are
    /// untrusted input).
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        // checked: a hostile length must produce Err, never a wrap/panic
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "truncated payload: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                )
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails on truncated payload.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// Fails on truncated payload.
    pub fn u32(&mut self) -> Result<u32, String> {
        // g4check: allow(unwrap-in-lib): take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Fails on truncated payload.
    pub fn u64(&mut self) -> Result<u64, String> {
        // g4check: allow(unwrap-in-lib): take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a length written by [`BinWriter::len_of`] as a `usize`.
    ///
    /// # Errors
    ///
    /// Fails on truncated payload or a length that overflows `usize`.
    pub fn len_of(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "length overflows usize".to_string())
    }

    /// Reads an element count whose elements each occupy at least
    /// `min_elem_bytes` of remaining payload. Every count-prefixed
    /// reader must use this (not [`len_of`](BinReader::len_of)) before
    /// `Vec::with_capacity`, so a hostile count field produces `Err`
    /// instead of a multi-GB allocation — the FNV checksum is integrity,
    /// not authentication, and is trivially forgeable.
    ///
    /// # Errors
    ///
    /// Fails on truncated payload or a count the remaining bytes cannot
    /// possibly satisfy.
    pub fn count_of(&mut self, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.len_of()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_elem_bytes.max(1))
            .is_none_or(|b| b > remaining)
        {
            return Err(format!(
                "implausible element count {n} (at least {} bytes each, {remaining} remain)",
                min_elem_bytes.max(1)
            ));
        }
        Ok(n)
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// Fails on truncated payload.
    pub fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on truncated payload or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|e| format!("bad string: {e}"))
    }

    /// Reads a length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// Fails on truncated payload.
    pub fn bytes(&mut self) -> Result<&'a [u8], String> {
        let n = self.len_of()?;
        self.take(n)
    }

    /// Reads a matrix written by [`BinWriter::matrix`].
    ///
    /// # Errors
    ///
    /// Fails on truncated payload or an implausible shape.
    pub fn matrix(&mut self) -> Result<Matrix, String> {
        let rows = self.len_of()?;
        let cols = self.len_of()?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| format!("matrix shape {rows}x{cols} overflows"))?;
        // guard the allocation against hostile shape fields before
        // reserving: `pos <= len` always holds, so the subtraction is safe
        if n.checked_mul(4)
            .is_none_or(|b| b > self.buf.len() - self.pos)
        {
            return Err(format!("truncated {rows}x{cols} matrix"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Asserts the payload was fully consumed.
    ///
    /// # Errors
    ///
    /// Fails when trailing bytes remain — a sign of format drift.
    pub fn done(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} unread payload bytes remain",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// --- filesystem helpers ------------------------------------------------

/// Writes artifact bytes to `path` atomically: the bytes land in a
/// sibling `*.tmp` file first and are renamed into place, so a crashed
/// writer never leaves a torn artifact behind.
///
/// # Errors
///
/// Returns the underlying I/O error as text.
pub fn write_artifact(path: &std::path::Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming {} into place: {e}", tmp.display()))
}

/// Reads artifact bytes from `path`.
///
/// # Errors
///
/// Returns the underlying I/O error as text.
pub fn read_artifact(path: &std::path::Path) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))
}

// --- optimizer state ---------------------------------------------------

/// Tag byte identifying the optimizer variant inside a checkpoint.
pub const OPT_TAG_SGD: u8 = 0;
/// Tag byte identifying the Adam optimizer inside a checkpoint.
pub const OPT_TAG_ADAM: u8 = 1;

/// Writes SGD state (tagged) into an artifact.
pub fn write_sgd(w: &mut BinWriter, s: &Sgd) {
    w.u8(OPT_TAG_SGD);
    w.f32(s.lr);
}

/// Writes Adam state (tagged), including the first/second-moment
/// estimates, so a resumed run continues bit-exactly.
pub fn write_adam(w: &mut BinWriter, a: &Adam) {
    w.u8(OPT_TAG_ADAM);
    w.f32(a.lr);
    w.f32(a.beta1);
    w.f32(a.beta2);
    w.f32(a.eps);
    w.u64(a.t);
    w.len_of(a.m.len());
    for m in &a.m {
        w.matrix(m);
    }
    for v in &a.v {
        w.matrix(v);
    }
}

/// Reads SGD state written by [`write_sgd`] (tag already consumed).
///
/// # Errors
///
/// Fails on truncated payload.
pub fn read_sgd(r: &mut BinReader<'_>) -> Result<Sgd, String> {
    Ok(Sgd { lr: r.f32()? })
}

/// Reads Adam state written by [`write_adam`] (tag already consumed).
///
/// # Errors
///
/// Fails on truncated or malformed payload.
pub fn read_adam(r: &mut BinReader<'_>) -> Result<Adam, String> {
    let lr = r.f32()?;
    let beta1 = r.f32()?;
    let beta2 = r.f32()?;
    let eps = r.f32()?;
    let t = r.u64()?;
    let n = r.count_of(16)?; // each moment matrix has a 16-byte shape header
    let mut m = Vec::with_capacity(n);
    for _ in 0..n {
        m.push(r.matrix()?);
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.matrix()?);
    }
    Ok(Adam {
        lr,
        beta1,
        beta2,
        eps,
        t,
        m,
        v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, ParamStore};

    #[test]
    fn primitives_roundtrip() {
        let mut w = BinWriter::new("test");
        w.u8(9);
        w.u32(1234);
        w.u64(u64::MAX - 3);
        w.f32(-0.0);
        w.f32(f32::MIN_POSITIVE / 2.0); // subnormal
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.finish();
        let mut r = BinReader::open(&bytes, "test").expect("opens");
        assert_eq!(r.version(), BASE_VERSION, "unchanged kinds stay v1");
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.f32().unwrap(), f32::MIN_POSITIVE / 2.0);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.done().expect("fully consumed");
    }

    #[test]
    fn matrix_roundtrips_bit_exactly() {
        let m = Matrix::from_fn(5, 3, |r, c| (r as f32 - 2.0) * 0.1 + c as f32 * -7.25e-3);
        let mut w = BinWriter::new("m");
        w.matrix(&m);
        let bytes = w.finish();
        let mut r = BinReader::open(&bytes, "m").expect("opens");
        let back = r.matrix().expect("matrix");
        assert_eq!(back, m);
        let lhs: Vec<u32> = back.as_slice().iter().map(|v| v.to_bits()).collect();
        let rhs: Vec<u32> = m.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let mut w = BinWriter::new("c");
        w.u64(42);
        let mut bytes = w.finish();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(BinReader::open(&bytes, "c")
            .expect_err("must fail")
            .contains("checksum"));
    }

    #[test]
    fn kind_and_magic_are_enforced() {
        let bytes = BinWriter::new("alpha").finish();
        assert!(BinReader::open(&bytes, "beta")
            .expect_err("kind mismatch")
            .contains("kind"));
        let mut garbage = bytes.clone();
        garbage[0] = b'X';
        // magic damage also breaks the checksum; either error is fine
        assert!(BinReader::open(&garbage, "alpha").is_err());
        assert!(BinReader::open(&[], "alpha").is_err());
    }

    #[test]
    fn newer_version_is_rejected() {
        let mut w = BinWriter::new("v");
        w.u8(0);
        let mut bytes = w.finish();
        // bump the version field, then re-seal the checksum
        bytes[4] = 0xFF;
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(BinReader::open(&bytes, "v")
            .expect_err("must fail")
            .contains("newer"));
    }

    #[test]
    fn older_versions_stay_readable() {
        let mut w = BinWriter::with_version("v", 1);
        w.u64(5);
        let bytes = w.finish();
        let mut r = BinReader::open(&bytes, "v").expect("v1 opens");
        assert_eq!(r.version(), 1);
        assert_eq!(r.u64().unwrap(), 5);
        r.done().expect("consumed");
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn future_writer_version_is_rejected() {
        let _ = BinWriter::with_version("v", FORMAT_VERSION + 1);
    }

    #[test]
    fn hostile_count_fields_error_instead_of_allocating() {
        // a forged artifact with a valid checksum but an absurd count
        let mut w = BinWriter::new("lib");
        w.u64(u64::MAX - 7); // count field
        let bytes = w.finish();
        let mut r = BinReader::open(&bytes, "lib").expect("opens");
        assert!(r.count_of(16).is_err(), "hostile count accepted");

        // a hostile blob length must Err from take(), never wrap
        let mut w = BinWriter::new("lib");
        w.u64(u64::MAX); // blob length
        let bytes = w.finish();
        let mut r = BinReader::open(&bytes, "lib").expect("opens");
        assert!(r.bytes().is_err(), "hostile blob length accepted");
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = BinWriter::new("t");
        w.u64(1);
        w.u64(2);
        let bytes = w.finish();
        let mut r = BinReader::open(&bytes, "t").expect("opens");
        assert_eq!(r.u64().unwrap(), 1);
        assert!(r.done().is_err());
    }

    #[test]
    fn adam_state_roundtrips_bit_exactly() {
        // run a few real steps so m/v/t are non-trivial
        let mut params = ParamStore::new();
        let id = params.add("w", Matrix::from_rows(&[&[4.0, -2.0, 0.5]]));
        let mut opt = Adam::new(0.05);
        for _ in 0..7 {
            let g = vec![params.get(id).scale(2.0)];
            opt.step(&mut params, &g);
        }
        let mut w = BinWriter::new("opt");
        write_adam(&mut w, &opt);
        let bytes = w.finish();
        let mut r = BinReader::open(&bytes, "opt").expect("opens");
        assert_eq!(r.u8().unwrap(), OPT_TAG_ADAM);
        let mut back = read_adam(&mut r).expect("reads");
        r.done().expect("consumed");
        // one more identical step from both must agree bit for bit
        let mut p2 = params.clone();
        let g = vec![params.get(id).scale(2.0)];
        opt.step(&mut params, &g);
        back.step(&mut p2, &g);
        assert_eq!(params.get(id), p2.get(id));
    }

    #[test]
    fn sgd_state_roundtrips() {
        let mut w = BinWriter::new("opt");
        write_sgd(&mut w, &Sgd::new(0.125));
        let bytes = w.finish();
        let mut r = BinReader::open(&bytes, "opt").expect("opens");
        assert_eq!(r.u8().unwrap(), OPT_TAG_SGD);
        assert_eq!(read_sgd(&mut r).expect("reads").lr(), 0.125);
    }
}
