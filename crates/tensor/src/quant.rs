//! Symmetric int8 quantization for memory-bound scans.
//!
//! Corpus-scale retrieval is limited by shard memory traffic, not
//! arithmetic: a 1M-row f32 index streams 4 bytes per component per
//! query. Quantizing sealed rows to int8 cuts that traffic ~4x while an
//! exact f32 rescoring pass keeps final scores bit-identical (see
//! `gnn4ip-eval`'s quantized shard scan, which consumes these
//! primitives).
//!
//! The scheme is *symmetric*: a block of values is calibrated to a
//! single positive `scale` with `zero_point = 0`, each value maps to
//! `round(v / scale)` clamped to `[-127, 127]`, and dequantization is
//! the exact two-op inverse `(q - zero_point) * scale`. Symmetry keeps
//! the integer dot product free of zero-point cross terms, so
//! [`dot_i8`] is a plain sum of `i8 × i8` products accumulated in
//! `i32` — exact integer arithmetic for any block up to ~133k
//! components (`127² · n < 2³¹`).

/// Calibration header of one quantized block: the `scale`/`zero_point`
/// pair every stored `i8` is interpreted through.
///
/// [`QuantParams::calibrate`] always produces `zero_point = 0`
/// (symmetric quantization); the field exists so the serialized shard
/// header stays honest about the scheme it uses and an asymmetric
/// variant could be added without a format break.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::QuantParams;
///
/// let p = QuantParams::calibrate(&[0.5, -1.0, 0.25]);
/// let q = p.quantize(0.5);
/// assert!((p.dequantize(q) - 0.5).abs() <= p.step());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Positive width of one quantization step.
    pub scale: f32,
    /// Integer code of the real value 0.0 (always 0 for symmetric
    /// calibration).
    pub zero_point: i8,
}

impl QuantParams {
    /// Symmetric calibration over one block: `scale = max|v| / 127`,
    /// ignoring non-finite entries. An all-zero (or empty, or all
    /// non-finite) block gets `scale = 1.0`, under which it quantizes
    /// to all zeros and dequantizes back exactly.
    pub fn calibrate(values: &[f32]) -> Self {
        let mut max_abs = 0.0f32;
        for &v in values {
            if v.is_finite() {
                max_abs = max_abs.max(v.abs());
            }
        }
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        Self {
            scale,
            zero_point: 0,
        }
    }

    /// Quantizes one value: `round(v / scale) + zero_point`, clamped to
    /// the symmetric range `[-127, 127]` (the code `-128` is never
    /// produced, keeping negation exact). Non-finite input maps to
    /// `zero_point`, mirroring how the embedding index stores
    /// non-finite rows as zeros.
    pub fn quantize(&self, v: f32) -> i8 {
        if !v.is_finite() {
            return self.zero_point;
        }
        let q = (v / self.scale).round() + f32::from(self.zero_point);
        q.clamp(-127.0, 127.0) as i8
    }

    /// Exact inverse interpretation of a stored code:
    /// `(q - zero_point) * scale`.
    pub fn dequantize(&self, q: i8) -> f32 {
        (i32::from(q) - i32::from(self.zero_point)) as f32 * self.scale
    }

    /// Quantizes a slice, appending the codes to `out`.
    pub fn quantize_into(&self, values: &[f32], out: &mut Vec<i8>) {
        out.reserve(values.len());
        out.extend(values.iter().map(|&v| self.quantize(v)));
    }

    /// Upper bound on the round-trip error `|v - dequantize(quantize(v))|`
    /// for any finite `v` inside the calibrated range: half a
    /// quantization step.
    pub fn step(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Integer dot product of two int8 blocks, accumulated exactly in
/// `i32`. With codes bounded by 127 the accumulator cannot overflow
/// below ~133k components, far beyond any embedding dimension here.
///
/// # Panics
///
/// Panics on a length mismatch.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::dot_i8;
///
/// assert_eq!(dot_i8(&[127, -1, 3], &[1, 2, -3]), 127 - 2 - 9);
/// ```
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "int8 dot of mismatched lengths");
    let mut acc0 = 0i32;
    let mut acc1 = 0i32;
    let mut acc2 = 0i32;
    let mut acc3 = 0i32;
    let mut ai = a.chunks_exact(4);
    let mut bi = b.chunks_exact(4);
    for (ca, cb) in ai.by_ref().zip(bi.by_ref()) {
        acc0 += i32::from(ca[0]) * i32::from(cb[0]);
        acc1 += i32::from(ca[1]) * i32::from(cb[1]);
        acc2 += i32::from(ca[2]) * i32::from(cb[2]);
        acc3 += i32::from(ca[3]) * i32::from(cb[3]);
    }
    for (&x, &y) in ai.remainder().iter().zip(bi.remainder()) {
        acc0 += i32::from(x) * i32::from(y);
    }
    acc0 + acc1 + acc2 + acc3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrate_covers_the_max_component_exactly() {
        let p = QuantParams::calibrate(&[0.3, -0.8, 0.1]);
        assert_eq!(p.zero_point, 0);
        assert_eq!(p.quantize(-0.8), -127);
        assert_eq!(
            p.dequantize(-127).to_bits(),
            (-127.0f32 * p.scale).to_bits()
        );
    }

    #[test]
    fn roundtrip_error_is_within_half_a_step() {
        let vals: Vec<f32> = (0..200).map(|i| (i as f32 * 0.37).sin() * 0.9).collect();
        let p = QuantParams::calibrate(&vals);
        for &v in &vals {
            let err = (v - p.dequantize(p.quantize(v))).abs();
            // a hair of slack for the division/rounding in quantize
            assert!(err <= p.step() * 1.0001, "v={v} err={err}");
        }
    }

    #[test]
    fn degenerate_blocks_quantize_to_zeros() {
        for block in [&[][..], &[0.0, -0.0][..], &[f32::NAN, f32::INFINITY][..]] {
            let p = QuantParams::calibrate(block);
            assert_eq!(p.scale, 1.0);
            for &v in block {
                assert_eq!(p.quantize(v), 0);
                assert_eq!(p.dequantize(p.quantize(v)), 0.0);
            }
        }
    }

    #[test]
    fn quantize_into_matches_scalar_quantize() {
        let vals: Vec<f32> = (0..33).map(|i| i as f32 * 0.11 - 1.7).collect();
        let p = QuantParams::calibrate(&vals);
        let mut out = Vec::new();
        p.quantize_into(&vals, &mut out);
        let scalar: Vec<i8> = vals.iter().map(|&v| p.quantize(v)).collect();
        assert_eq!(out, scalar);
    }

    #[test]
    fn dot_i8_matches_a_reference_loop() {
        let a: Vec<i8> = (0..67).map(|i| ((i * 37) % 255 - 127) as i8).collect();
        let b: Vec<i8> = (0..67).map(|i| ((i * 91) % 255 - 127) as i8).collect();
        let reference: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), reference);
    }

    #[test]
    fn dot_i8_extremes_do_not_overflow() {
        let a = vec![127i8; 1024];
        let b = vec![-127i8; 1024];
        assert_eq!(dot_i8(&a, &b), -127 * 127 * 1024);
        assert_eq!(dot_i8(&[], &[]), 0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn dot_i8_rejects_length_mismatch() {
        let _ = dot_i8(&[1], &[1, 2]);
    }
}
