//! # gnn4ip-tensor
//!
//! Dense/sparse linear algebra and reverse-mode automatic differentiation for
//! the GNN4IP reproduction.
//!
//! The published GNN4IP system runs on PyTorch; this crate is its substrate
//! substitute: a row-major [`Matrix`], a CSR [`CsrMatrix`] for graph
//! adjacency operators, a recording [`Tape`] with [`Var`] handles for
//! reverse-mode autodiff, and [`Sgd`]/[`Adam`] optimizers over a
//! [`ParamStore`]. Every backward rule is validated against finite
//! differences (see [`check_gradient`]).
//!
//! # Examples
//!
//! One gradient step on a toy objective:
//!
//! ```
//! use gnn4ip_tensor::{Matrix, Optimizer, ParamStore, Sgd, Tape};
//!
//! let mut params = ParamStore::new();
//! let w = params.add("w", Matrix::scalar(3.0));
//! let tape = Tape::new();
//! let vars = params.inject(&tape);
//! let loss = vars[w.index()].hadamard(vars[w.index()]); // w^2
//! let grads = tape.backward(loss);
//! let g = grads.wrt_or_zero(vars[w.index()]);
//! use gnn4ip_tensor::Optimizer as _;
//! Sgd::new(0.1).step(&mut params, &[g]);
//! assert!((params.get(w).item() - 2.4).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gradcheck;
mod matrix;
mod optim;
mod parallel;
mod quant;
mod serialize;
mod sparse;
mod tape;
mod workspace;

pub use gradcheck::{check_gradient, GradCheckReport};
pub use matrix::{gemm_nt, Matrix};
pub use optim::{Adam, GradAccum, Optimizer, ParamId, ParamStore, Sgd};
pub use parallel::{fan_out, worker_count};
pub use quant::{dot_i8, QuantParams};
pub use serialize::{
    describe_artifact, fnv1a64, read_adam, read_artifact, read_sgd, write_adam, write_artifact,
    write_sgd, ArtifactInfo, BinReader, BinWriter, Fnv64, BASE_VERSION, FORMATS, FORMAT_VERSION,
    MAGIC, OPT_TAG_ADAM, OPT_TAG_SGD,
};
pub use sparse::{mean_adjacency, normalized_adjacency, CsrMatrix};
pub use tape::{dropout_mask, Gradients, Tape, Var};
pub use workspace::Workspace;
