//! Shared thread fan-out for data-parallel work.
//!
//! The minibatch gradient loop, the batched tape-free inference pass, and
//! the sharded index's parallel query all split a slice of independent
//! work items across scoped worker threads. The chunking policy lives
//! here, once, so those paths cannot drift.

/// Resolves a caller-facing thread count: `0` means one per available
/// core.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// The number of chunks (= distinct chunk indices = worker invocations)
/// that [`fan_out`] will actually produce for `items` work items and a
/// requested `threads` — `min(threads, items)` in effect, since a chunk
/// is never empty.
///
/// This is the contract callers seeding per-worker RNGs from the chunk
/// index must plan against: when `threads > items` the pool silently
/// collapses to `items` workers, and chunk indices only cover
/// `0..worker_count(items, threads)`. Seeds derived from the chunk index
/// therefore never alias within one call, but a caller must not assume
/// `threads` distinct seed streams were consumed.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::worker_count;
///
/// assert_eq!(worker_count(50, 8), 8);
/// assert_eq!(worker_count(3, 8), 3); // collapses: 3 items, 3 chunks
/// assert_eq!(worker_count(0, 8), 0);
/// ```
pub fn worker_count(items: usize, threads: usize) -> usize {
    if items == 0 {
        return 0;
    }
    let chunk = items.div_ceil(resolve_threads(threads)).max(1);
    items.div_ceil(chunk)
}

/// Splits `items` into contiguous chunks and runs `f` on each chunk from
/// a scoped worker thread, returning per-chunk results in chunk order.
/// The returned `Vec` holds exactly
/// [`worker_count`]`(items.len(), threads)` results, one per chunk.
///
/// `f` receives `(chunk_index, chunk)`; chunk indices are dense,
/// sequential (`0..worker_count(items.len(), threads)`), stable, and
/// deterministic, so callers may fold them into per-worker RNG seeds
/// without aliasing. `threads == 0` means one chunk per available core.
/// A single-chunk fan-out runs inline on the caller's thread — no spawn
/// overhead for small inputs.
///
/// # Panics
///
/// Propagates a panic from any worker.
///
/// # Examples
///
/// ```
/// use gnn4ip_tensor::fan_out;
///
/// let squares: Vec<Vec<i32>> = fan_out(&[1, 2, 3, 4, 5], 2, |_tid, chunk| {
///     chunk.iter().map(|x| x * x).collect()
/// });
/// let flat: Vec<i32> = squares.into_iter().flatten().collect();
/// assert_eq!(flat, vec![1, 4, 9, 16, 25]);
/// ```
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = resolve_threads(threads);
    let chunk = items.len().div_ceil(threads).max(1);
    let expected = items.len().div_ceil(chunk); // == worker_count(len, threads)
    let out = if chunk >= items.len() {
        vec![f(0, items)]
    } else {
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(tid, c)| scope.spawn(move || f(tid, c)))
                .collect();
            handles
                .into_iter()
                // g4check: allow(unwrap-in-lib): join only fails if the worker panicked; re-raising that panic on the caller is the correct propagation
                .map(|h| h.join().expect("fan-out worker panicked"))
                .collect()
        })
    };
    assert_eq!(
        out.len(),
        expected,
        "fan_out chunking drifted from the worker_count contract"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_across_chunks() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 3, 8, 0] {
            let flat: Vec<usize> = fan_out(&items, threads, |_t, c| c.to_vec())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(flat, items, "threads={threads}");
        }
    }

    #[test]
    fn chunk_count_never_exceeds_threads() {
        let items: Vec<u8> = vec![0; 50];
        for threads in 1..=8 {
            let n_chunks = fan_out(&items, threads, |_t, _c| ()).len();
            assert!(
                n_chunks <= threads,
                "{n_chunks} chunks for {threads} threads"
            );
        }
    }

    #[test]
    fn chunk_indices_are_sequential() {
        let items: Vec<u8> = vec![0; 40];
        let tids: Vec<usize> = fan_out(&items, 4, |tid, _c| tid);
        assert_eq!(tids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out: Vec<()> = fan_out::<u8, (), _>(&[], 4, |_t, _c| ());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let flat: Vec<i32> = fan_out(&[1, 2], 16, |_t, c| c.to_vec())
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(flat, vec![1, 2]);
    }

    #[test]
    fn worker_count_matches_actual_chunk_count() {
        for items in [0usize, 1, 2, 3, 7, 40, 50, 103] {
            let data = vec![0u8; items];
            for threads in [1usize, 2, 3, 5, 8, 16, 64] {
                let planned = worker_count(items, threads);
                let tids: Vec<usize> = fan_out(&data, threads, |tid, _| tid);
                assert_eq!(
                    tids.len(),
                    planned,
                    "items={items} threads={threads}: planned {planned}, got {}",
                    tids.len()
                );
                // chunk indices are dense and sequential — distinct seeds
                // per worker, no aliasing
                assert_eq!(tids, (0..planned).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn worker_count_collapses_to_item_count() {
        // threads > items: the pool silently shrinks to one chunk per item
        assert_eq!(worker_count(3, 100), 3);
        assert_eq!(worker_count(1, 8), 1);
        // and never exceeds the request
        for items in 1..40usize {
            for threads in 1..10usize {
                assert!(worker_count(items, threads) <= threads.min(items));
                assert!(worker_count(items, threads) >= 1);
            }
        }
    }
}
