//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so this in-repo shim
//! provides exactly the surface the workspace uses: [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), [`rngs::mock::StepRng`], the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, and
//! [`seq::SliceRandom`]. Everything is deterministic given a seed; there
//! is no OS entropy source. `thread_rng` and `from_entropy` exist only
//! as `#[deprecated]` tombstones so that any use of non-deterministic
//! seeding fails the workspace's `clippy -D warnings` gate (the
//! convention is documented in the README).
//!
//! The generators are NOT cryptographically secure — they exist to drive
//! reproducible experiments, weight init, and shuffles.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution): integers over their full range, floats in `[0, 1)`,
/// `bool` as a fair coin.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 like upstream
    /// `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Upstream `rand` seeds from OS entropy here. This workspace bans
    /// non-deterministic seeding — every experiment, test, and example
    /// must be reproducible from fixed constants (see README, "Seeded
    /// randomness") — so this shim only exists to make any use fail
    /// `clippy -D warnings` via the deprecation lint. It seeds from a
    /// fixed constant.
    #[deprecated(note = "non-deterministic seeding is banned in this workspace; \
                use seed_from_u64 with a fixed constant (see README)")]
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5EED_5EED_5EED_5EED)
    }
}

/// Upstream `rand`'s thread-local OS-seeded generator. Banned here for
/// the same reason as [`SeedableRng::from_entropy`]: any use fails
/// `clippy -D warnings` through the deprecation lint. Returns a
/// fixed-seed [`rngs::StdRng`].
#[deprecated(note = "non-deterministic generators are banned in this workspace; \
            construct StdRng::seed_from_u64 with a fixed constant (see README)")]
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0x5EED_5EED_5EED_5EED)
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna). Fast, 256-bit state, passes BigCrush; deterministic from
    /// its seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// Arithmetic-sequence generator: yields `initial`, then keeps
        /// adding `increment` (wrapping). Useful for deterministic tests.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Create a generator yielding `initial, initial + increment, ...`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(0, 1);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1);
        assert_eq!(r.next_u64(), 2);
    }
}
