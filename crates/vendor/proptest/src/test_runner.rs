//! The shim's per-test random number generator.

/// SplitMix64 generator seeded from the test's name, so a given test
/// explores the same cases on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic generator for the named test (FNV-1a of the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}
