//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access, so this in-repo shim
//! implements the surface the workspace's property tests use: the
//! [`proptest!`] macro, the [`Strategy`] trait with range / tuple /
//! [`collection::vec`] / regex-literal strategies and
//! [`Strategy::prop_map`], [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for a shim:
//! failing cases are **not shrunk** (the panic message carries the
//! values via normal `assert!` formatting), and the per-test RNG is
//! seeded deterministically from the test's name, so every run explores
//! the same cases — reproducibility over novelty.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner;

use test_runner::TestRng;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (upstream: `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;

    fn sample(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "empty strategy range");
        let span = self.end as u32 - self.start as u32;
        let mut v = self.start as u32 + (rng.next_u64() % span as u64) as u32;
        // skip the surrogate gap
        if (0xD800..0xE000).contains(&v) {
            v = 0xD7FF;
        }
        char::from_u32(v).unwrap_or(self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.sample(rng), )+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// String literals are regex-subset strategies, as in upstream proptest.
///
/// Supported syntax: literal characters, escapes (`\n`, `\t`, `\r`,
/// `\\`, and escaped punctuation), character classes `[a-z...]`
/// (ranges, escapes, leading `^` negation over printable ASCII), and
/// the quantifiers `{m,n}` / `{m,}` / `{m}` / `*` / `+` / `?`.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        regex_lite::sample(self, rng)
    }
}

mod regex_lite {
    use super::test_runner::TestRng;

    enum Atom {
        Lit(char),
        Class(Vec<char>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut negated = false;
        if chars.peek() == Some(&'^') {
            negated = true;
            chars.next();
        }
        let mut members: Vec<char> = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '\\' => {
                    let e = unescape(chars.next().expect("dangling escape in class"));
                    members.push(e);
                    prev = Some(e);
                }
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let hi = match chars.next() {
                        Some('\\') => unescape(chars.next().expect("dangling escape")),
                        Some(h) => h,
                        None => panic!("unterminated class range"),
                    };
                    let lo = prev.take().expect("range without start");
                    for v in (lo as u32 + 1)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            members.push(ch);
                        }
                    }
                }
                other => {
                    members.push(other);
                    prev = Some(other);
                }
            }
        }
        if negated {
            let excluded: std::collections::HashSet<char> = members.into_iter().collect();
            members = (0x20..0x7Fu32)
                .filter_map(char::from_u32)
                .filter(|c| !excluded.contains(c))
                .collect();
            assert!(
                !members.is_empty(),
                "negated class excludes all printable ASCII"
            );
        }
        assert!(!members.is_empty(), "empty character class");
        members
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                if let Some((lo, hi)) = spec.split_once(',') {
                    let min: usize = lo.trim().parse().expect("bad quantifier");
                    let max = if hi.trim().is_empty() {
                        min + 32
                    } else {
                        hi.trim().parse().expect("bad quantifier")
                    };
                    (min, max)
                } else {
                    let n: usize = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Lit(unescape(chars.next().expect("dangling escape"))),
                '.' => Atom::Class((0x20..0x7Fu32).filter_map(char::from_u32).collect()),
                other => Atom::Lit(other),
            };
            let (min, max) = parse_quantifier(&mut chars);
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let span = (piece.max - piece.min + 1) as u64;
            let count = piece.min + (rng.next_u64() % span) as usize;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[(rng.next_u64() % set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive count bound for [`vec()`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property test. The shim forwards to
/// `assert!`; a failure panics with the interpolated values (no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test (forwards to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let ($($pat,)+) = $crate::Strategy::sample(&strategy, &mut rng);
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (no shrinking in shim)",
                            stringify!($name), case + 1, config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_lite_class_and_quantifier() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..200 {
            let s = Strategy::sample(&"[ -~\\n]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let exact = Strategy::sample(&"ab{3}c", &mut rng);
        assert_eq!(exact, "abbbc");
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0usize..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: tuple destructuring, map, and asserts.
        #[test]
        fn macro_end_to_end(
            a in 1usize..10,
            (x, y) in (0u64..100, 0u64..100),
            v in prop::collection::vec(0i32..3, 0..5),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(x < 100 && y < 100);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(a + 1, 1 + a);
        }

        /// prop_map composes.
        #[test]
        fn prop_map_works(n in (0usize..10).prop_map(|n| n * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 21);
        }
    }
}
