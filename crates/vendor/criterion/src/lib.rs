//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this in-repo shim
//! implements the surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — over a simple
//! wall-clock measurement loop.
//!
//! Measurement model: each benchmark is warmed up for a fixed budget to
//! estimate per-iteration cost, then `sample_size` samples are taken,
//! each running enough iterations to be timeable; the median, minimum,
//! and maximum per-iteration times are reported on stdout in a
//! criterion-like format. There are no plots, no statistics beyond the
//! five-number-ish summary, and no saved baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// measured batch regardless of variant; the enum exists for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch.
    SmallInput,
    /// Large inputs: one iteration per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly; its return value is black-boxed so
    /// the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

fn run_bench(group: &str, id: &str, config: Config, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: run single iterations until the budget is spent, tracking
    // cost to size the measured samples.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

    let samples = config.sample_size.max(2);
    let budget = config.measurement.as_secs_f64() / samples as f64;
    let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);

    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi),
        samples,
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Entry point: owns global configuration and spawns groups.
pub struct Criterion {
    config: Config,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench" && a != "test");
        Criterion {
            config: Config::default(),
            filter,
        }
    }
}

impl Criterion {
    /// Override the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        if self.matches(&id) {
            run_bench("", &id, self.config, &mut f);
        }
        self
    }

    /// Benchmark a function against an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        if self.matches(&id) {
            run_bench("", &id, self.config, &mut |b| f(b, input));
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    config: Config,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        if self.criterion.matches(&format!("{}/{id}", self.name)) {
            run_bench(&self.name, &id, self.config, &mut f);
        }
        self
    }

    /// Benchmark a closure against an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        if self.criterion.matches(&format!("{}/{id}", self.name)) {
            run_bench(&self.name, &id, self.config, &mut |b| f(b, input));
        }
        self
    }

    /// End the group. (The shim reports as it goes; this is a no-op kept
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a bare
            // `--test` invocation means "check it runs", so skip the
            // heavy measurement loops but still exercise construction.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }

    #[test]
    fn time_formatting_picks_unit() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        let mut batched = 0u64;
        b.iter_batched(|| 7u64, |x| batched += x, BatchSize::SmallInput);
        assert_eq!(batched, 700);
    }
}
