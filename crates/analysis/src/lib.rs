//! # gnn4ip-analysis
//!
//! Machine-checked workspace invariants: the `g4check` binary and the
//! library behind it.
//!
//! The workspace's correctness conventions — fixed-seed randomness, no
//! stray panics in library code, `#![forbid(unsafe_code)]` everywhere,
//! deterministic tests, a single registry of `G4IP` artifact kind/version
//! pairs, lock discipline in the serve path, bit-identical float kernels
//! — used to live only in reviewers' heads. This crate turns them into
//! three enforcement pillars:
//!
//! - [`lint`] — phase-0 line lints: a lightweight line/token scanner
//!   over the workspace's `.rs` files (zero external dependencies, no
//!   rustc plumbing) that fails CI on any violation of the per-line
//!   rules listed in [`lint::Rule`]. Intentional exceptions are
//!   annotated in-source with `// g4check: allow(rule-name): reason`.
//! - [`index`] + [`graph`] + [`rules`] — the two-phase cross-file
//!   analyzer. Phase 1 builds a workspace *symbol index*: per-file fn
//!   definitions, call edges with live-guard sets, narrowing casts,
//!   float reductions, and panic sites, serialized under
//!   `target/g4check/` so incremental runs only re-index changed files.
//!   Phase 2 assembles the [`graph::SymbolGraph`] and runs the
//!   dataflow rules: lock discipline, cast truncation, float
//!   determinism, and panic reachability (see `RULES.md`).
//! - [`sched`] — a loom-lite deterministic-interleaving checker: a
//!   cooperative scheduler that exhaustively explores every bounded
//!   interleaving of the step-level [`sched::Program`] model of a
//!   concurrent algorithm, asserting invariants along each schedule.
//!   [`models`] holds the models of `gnn4ip_core::PublicationSlot` and
//!   `BoundedQueue` (plus deliberately broken variants the checker must
//!   catch, so the checker itself stays honest).
//!
//! Run everything from the workspace root:
//!
//! ```text
//! cargo run -p gnn4ip-analysis --bin g4check             # all stages
//! cargo run -p gnn4ip-analysis --bin g4check -- graph    # graph rules only
//! cargo run -p gnn4ip-analysis --bin g4check -- --json all
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage error, `3`
//! internal error (workspace unreadable, cache I/O failure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod index;
pub mod lint;
pub mod models;
pub mod rules;
pub mod sched;

pub use graph::SymbolGraph;
pub use index::{build_index, FileIndex, FnRecord, IndexStats, WorkspaceIndex};
pub use lint::{run_lint, LintConfig, LintReport, Rule, Violation};
pub use rules::{run_full, run_graph_rules, AnalysisReport};
pub use sched::{ExploreReport, Explorer, Program, ScheduleViolation, Step};
