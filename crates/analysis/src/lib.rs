//! # gnn4ip-analysis
//!
//! Machine-checked workspace invariants: the `g4check` binary and the
//! library behind it.
//!
//! The workspace's correctness conventions — fixed-seed randomness, no
//! stray panics in library code, `#![forbid(unsafe_code)]` everywhere,
//! deterministic tests, a single registry of `G4IP` artifact kind/version
//! pairs — used to live only in reviewers' heads. This crate turns them
//! into two enforcement pillars:
//!
//! - [`lint`] — a repo-specific source lint driver: a lightweight
//!   line/token scanner over the workspace's `.rs` files (zero external
//!   dependencies, no rustc plumbing) that fails CI on any violation of
//!   the rules listed in [`lint::Rule`]. Intentional exceptions are
//!   annotated in-source with `// g4check: allow(rule-name): reason`.
//! - [`sched`] — a loom-lite deterministic-interleaving checker: a
//!   cooperative scheduler that exhaustively explores every bounded
//!   interleaving of the step-level [`sched::Program`] model of a
//!   concurrent algorithm, asserting invariants along each schedule.
//!   [`models`] holds the model of `gnn4ip_core::PublicationSlot` — the
//!   lock-free-style snapshot publication slot — and proves no torn
//!   reads, per-reader epoch monotonicity, and writer progress over every
//!   explored schedule (plus a deliberately broken variant the checker
//!   must catch, so the checker itself stays honest).
//!
//! Run both from the workspace root:
//!
//! ```text
//! cargo run -p gnn4ip-analysis --bin g4check            # lint + sched
//! cargo run -p gnn4ip-analysis --bin g4check -- lint    # lint only
//! cargo run -p gnn4ip-analysis --bin g4check -- sched   # interleavings only
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod models;
pub mod sched;

pub use lint::{run_lint, LintConfig, LintReport, Rule, Violation};
pub use sched::{ExploreReport, Explorer, Program, ScheduleViolation, Step};
