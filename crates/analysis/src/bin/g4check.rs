//! `g4check` — the workspace invariant gate.
//!
//! ```text
//! g4check [--root PATH] [--json] [--no-cache] [lint|graph|sched|all]
//! ```
//!
//! - `lint` scans every non-vendored `.rs` file for violations of the
//!   per-line workspace conventions (see `gnn4ip_analysis::lint::Rule`).
//! - `graph` builds the workspace symbol index (incrementally, cached
//!   under `target/g4check/`) and runs the cross-file dataflow rules:
//!   lock discipline, cast truncation, float determinism, panic
//!   reachability, and the interprocedural taint rules
//!   (`untrusted-alloc`, `len-overflow`, `error-swallow`).
//! - `sched` exhaustively explores the bounded interleavings of the
//!   `PublicationSlot` and `BoundedQueue` models and re-confirms the
//!   checker catches each one's seeded bug.
//! - `all` (the default) runs everything.
//!
//! `--json` writes a machine-readable report to stdout (human output
//! moves to stderr); `--no-cache` forces a full re-index. The JSON
//! report carries a `schema_version` and is byte-identical across runs
//! over an unchanged workspace: violations sort by (path, line, rule)
//! and nothing time- or machine-dependent is emitted.
//!
//! Exit codes, relied on by `ci.sh --stage analysis`:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean |
//! | 1    | violations found |
//! | 2    | usage error |
//! | 3    | internal error (workspace unreadable, cache I/O failure) |

use std::path::PathBuf;
use std::process::ExitCode;

use gnn4ip_analysis::index::cache_path;
use gnn4ip_analysis::lint::{find_workspace_root, run_lint, LintConfig, Violation};
use gnn4ip_analysis::models::{verify_bounded_queue, verify_publication_slot};
use gnn4ip_analysis::rules::run_full;

const EXIT_VIOLATIONS: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_INTERNAL: u8 = 3;

/// Version of the `--json` report shape. Consumers pin on this; bump it
/// whenever a key is added, removed, or changes meaning. The report is
/// deterministic for a given workspace: violations are sorted by
/// (path, line, rule) and no timestamps or absolute paths appear.
const JSON_SCHEMA_VERSION: u32 = 1;

fn usage() -> &'static str {
    "usage: g4check [--root PATH] [--json] [--no-cache] [lint|graph|sched|all]"
}

/// Everything one run produces, gathered before rendering so the JSON
/// and human reporters share a single source of truth.
#[derive(Default)]
struct RunOutcome {
    violations: Vec<Violation>,
    files_scanned: usize,
    files_indexed: usize,
    index_reused: usize,
    index_reindexed: usize,
    sched_schedules: usize,
    sched_failures: Vec<String>,
    stages: Vec<&'static str>,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut mode: Option<String> = None;
    let mut json = false;
    let mut no_cache = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("g4check: --root requires a path\n{}", usage());
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--json" => json = true,
            "--no-cache" => no_cache = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "lint" | "graph" | "sched" | "all" if mode.is_none() => mode = Some(arg),
            other => {
                eprintln!("g4check: unrecognized argument '{other}'\n{}", usage());
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let mode = mode.unwrap_or_else(|| "all".to_string());

    let root = match resolve_root(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("g4check: {e}");
            return ExitCode::from(EXIT_INTERNAL);
        }
    };

    let mut out = RunOutcome::default();
    let config = LintConfig { root: root.clone() };

    if mode == "graph" || mode == "all" {
        out.stages.push("graph");
        // `all` runs the line lints through run_full so the index and
        // the scan share one walk; plain `lint` mode keeps the cheap
        // index-free path.
        if mode == "all" {
            out.stages.push("lint");
        }
        let cache = (!no_cache).then(|| cache_path(&root));
        match run_full(&config, cache.as_deref()) {
            Ok(report) => {
                out.files_scanned = report.lint.files_scanned;
                out.files_indexed = report.files_indexed;
                out.index_reused = report.stats.reused;
                out.index_reindexed = report.stats.reindexed;
                out.violations.extend(report.graph);
                if mode == "all" {
                    out.violations.extend(report.lint.violations);
                }
            }
            Err(e) => {
                eprintln!("g4check: analysis failed to run: {e}");
                return ExitCode::from(EXIT_INTERNAL);
            }
        }
    } else if mode == "lint" {
        out.stages.push("lint");
        match run_lint(&config) {
            Ok(report) => {
                out.files_scanned = report.files_scanned;
                out.violations.extend(report.violations);
            }
            Err(e) => {
                eprintln!("g4check: lint failed to run: {e}");
                return ExitCode::from(EXIT_INTERNAL);
            }
        }
    }

    if mode == "sched" || mode == "all" {
        out.stages.push("sched");
        run_sched_stage(&mut out, json);
    }

    out.violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    render(&out, &root, json)
}

fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, String> {
    match root {
        Some(r) => Ok(r),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| format!("cannot determine current directory: {e}"))?;
            find_workspace_root(&cwd).ok_or_else(|| {
                format!(
                    "no workspace Cargo.toml found above {} — pass --root",
                    cwd.display()
                )
            })
        }
    }
}

fn run_sched_stage(out: &mut RunOutcome, json: bool) {
    /// One named model-checking suite: label plus its verifier entry point.
    type SchedSuite = (
        &'static str,
        fn() -> Result<gnn4ip_analysis::models::SchedSummary, String>,
    );
    let suites: &[SchedSuite] = &[
        ("publication-slot", verify_publication_slot),
        ("bounded-queue", verify_bounded_queue),
    ];
    for (suite, verify) in suites {
        match verify() {
            Ok(summary) => {
                if !json {
                    for run in &summary.runs {
                        println!(
                            "g4check sched [{suite}]: {:<22} {:>6} schedules (deepest {})",
                            run.name, run.schedules, run.deepest
                        );
                    }
                }
                out.sched_schedules += summary.total_schedules;
            }
            Err(e) => out.sched_failures.push(format!("[{suite}] {e}")),
        }
    }
}

fn render(out: &RunOutcome, root: &std::path::Path, json: bool) -> ExitCode {
    let clean = out.violations.is_empty() && out.sched_failures.is_empty();
    if json {
        println!("{}", to_json(out, clean));
    }
    let sink = |line: String| {
        // With --json, stdout is the machine report; humans read stderr.
        if json {
            eprintln!("{line}");
        } else if clean {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    };
    for v in &out.violations {
        sink(v.to_string());
    }
    for f in &out.sched_failures {
        sink(format!("g4check sched: FAILED — {f}"));
    }
    sink(format!(
        "g4check [{}]: {} — {} violation(s), {} files scanned, {} indexed \
         ({} reused, {} re-indexed), {} schedules explored, root {}",
        out.stages.join("+"),
        if clean { "OK" } else { "FAILED" },
        out.violations.len() + out.sched_failures.len(),
        out.files_scanned,
        out.files_indexed,
        out.index_reused,
        out.index_reindexed,
        out.sched_schedules,
        root.display(),
    ));
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_VIOLATIONS)
    }
}

/// Hand-rolled JSON writer (the crate is dependency-free by design).
fn to_json(out: &RunOutcome, clean: bool) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"schema_version\": {JSON_SCHEMA_VERSION},\n"));
    s.push_str(&format!("  \"clean\": {clean},\n"));
    s.push_str(&format!(
        "  \"stages\": [{}],\n",
        out.stages
            .iter()
            .map(|st| format!("\"{st}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("  \"files_scanned\": {},\n", out.files_scanned));
    s.push_str(&format!("  \"files_indexed\": {},\n", out.files_indexed));
    s.push_str(&format!("  \"index_reused\": {},\n", out.index_reused));
    s.push_str(&format!(
        "  \"index_reindexed\": {},\n",
        out.index_reindexed
    ));
    s.push_str(&format!(
        "  \"sched_schedules\": {},\n",
        out.sched_schedules
    ));
    s.push_str(&format!(
        "  \"sched_failures\": [{}],\n",
        out.sched_failures
            .iter()
            .map(|f| json_string(f))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"violations\": [");
    for (i, v) in out.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_string(v.rule.name()),
            json_string(&v.path.display().to_string()),
            v.line,
            json_string(&v.message),
        ));
    }
    if !out.violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}");
    s
}

fn json_string(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}
