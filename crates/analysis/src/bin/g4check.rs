//! `g4check` — the workspace invariant gate.
//!
//! ```text
//! g4check [--root PATH] [lint|sched|all]
//! ```
//!
//! - `lint` scans every non-vendored `.rs` file for violations of the
//!   workspace conventions (see `gnn4ip_analysis::lint::Rule`).
//! - `sched` exhaustively explores the bounded interleavings of the
//!   `PublicationSlot` and `BoundedQueue` models and re-confirms the
//!   checker catches each one's seeded bug.
//! - `all` (the default) runs both.
//!
//! Exit status is non-zero on any violation, which is how
//! `ci.sh --stage analysis` gates merges.

use std::path::PathBuf;
use std::process::ExitCode;

use gnn4ip_analysis::lint::{find_workspace_root, run_lint, LintConfig};
use gnn4ip_analysis::models::{verify_bounded_queue, verify_publication_slot};

fn usage() -> &'static str {
    "usage: g4check [--root PATH] [lint|sched|all]"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut mode: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("g4check: --root requires a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "lint" | "sched" | "all" if mode.is_none() => mode = Some(arg),
            other => {
                eprintln!("g4check: unrecognized argument '{other}'\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let mode = mode.unwrap_or_else(|| "all".to_string());

    let mut failed = false;
    if mode == "lint" || mode == "all" {
        failed |= !run_lint_stage(root);
    }
    if mode == "sched" || mode == "all" {
        failed |= !run_sched_stage();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_lint_stage(root: Option<PathBuf>) -> bool {
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("g4check: cannot determine current directory: {e}");
                    return false;
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "g4check: no workspace Cargo.toml found above {} — pass --root",
                        cwd.display()
                    );
                    return false;
                }
            }
        }
    };
    let report = match run_lint(&LintConfig { root: root.clone() }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("g4check: lint failed to run: {e}");
            return false;
        }
    };
    if report.is_clean() {
        println!(
            "g4check lint: OK — {} files scanned under {}, 0 violations",
            report.files_scanned,
            root.display()
        );
        true
    } else {
        for violation in &report.violations {
            eprintln!("{violation}");
        }
        eprintln!(
            "g4check lint: FAILED — {} violation(s) across {} scanned files",
            report.violations.len(),
            report.files_scanned
        );
        false
    }
}

/// One named model-checking suite: label plus its verifier entry point.
type SchedSuite = (
    &'static str,
    fn() -> Result<gnn4ip_analysis::models::SchedSummary, String>,
);

fn run_sched_stage() -> bool {
    let suites: &[SchedSuite] = &[
        ("publication-slot", verify_publication_slot),
        ("bounded-queue", verify_bounded_queue),
    ];
    let mut ok = true;
    for (suite, verify) in suites {
        match verify() {
            Ok(summary) => {
                for run in &summary.runs {
                    println!(
                        "g4check sched [{suite}]: {:<22} {:>6} schedules (deepest {})",
                        run.name, run.schedules, run.deepest
                    );
                }
                println!(
                    "g4check sched [{suite}]: OK — {} schedules explored exhaustively, \
                     seeded bug caught",
                    summary.total_schedules
                );
            }
            Err(e) => {
                eprintln!("g4check sched [{suite}]: FAILED — {e}");
                ok = false;
            }
        }
    }
    ok
}
