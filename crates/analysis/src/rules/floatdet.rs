//! The `float-determinism` graph rule.
//!
//! The serving pillar's core guarantee is bit-identical scores across
//! the flat, sharded, quantized, and batched paths. Float addition is
//! not associative, so that guarantee survives only while every float
//! reduction in the bit-identity-critical modules keeps a *fixed*
//! association order. This rule flags reduction sites (iterator
//! `sum`/`product`, float `fold`, split-accumulator initializations) in
//! those modules unless the enclosing fn is a registered deterministic
//! kernel — a fn whose accumulation order is part of its contract and
//! covered by the cross-path equivalence tests.
//!
//! The registry follows the format-registry honesty convention: a row
//! whose fn no longer contains a reduction is itself a violation, so
//! the allowlist cannot silently rot.

use std::path::PathBuf;

use crate::index::WorkspaceIndex;
use crate::lint::{Rule, Violation};

/// Modules whose float reductions are bit-identity-critical.
pub const FLOAT_CRITICAL_PATHS: &[&str] = &[
    "crates/eval/src/index.rs",
    "crates/eval/src/manifest.rs",
    "crates/eval/src/sharded.rs",
    "crates/tensor/src/matrix.rs",
];

/// Registered deterministic kernels: (file, fn display name). Each row
/// must name a fn that still contains a detected reduction site.
pub const DETERMINISM_KERNELS: &[(&str, &str)] = &[
    ("crates/eval/src/index.rs", "normalize_into"),
    ("crates/eval/src/index.rs", "score_row"),
    ("crates/eval/src/index.rs", "query_norm"),
    ("crates/eval/src/sharded.rs", "max_row_l1"),
    ("crates/eval/src/sharded.rs", "centroid_norms2"),
    ("crates/eval/src/sharded.rs", "nearest_centroid"),
    ("crates/tensor/src/matrix.rs", "Matrix::sum"),
    ("crates/tensor/src/matrix.rs", "Matrix::norm"),
    ("crates/tensor/src/matrix.rs", "Matrix::dot"),
    ("crates/tensor/src/matrix.rs", "Matrix::max_abs"),
    ("crates/tensor/src/matrix.rs", "gemm_nt"),
];

/// Whether a fn record carries at least one reduction-order-sensitive
/// site the rule tracks.
fn has_sites(f: &crate::index::FnRecord) -> bool {
    f.reductions.iter().any(|r| r.hinted) || !f.accums.is_empty()
}

/// Runs the rule over the index.
pub fn check(index: &WorkspaceIndex) -> Vec<Violation> {
    let mut violations = Vec::new();
    for path in FLOAT_CRITICAL_PATHS {
        let Some(fi) = index.files.get(*path) else {
            continue;
        };
        for f in &fi.fns {
            if f.is_test || !has_sites(f) {
                continue;
            }
            let display = f.display();
            if DETERMINISM_KERNELS.contains(&(*path, display.as_str())) {
                continue;
            }
            for r in &f.reductions {
                if !r.hinted || fi.allowed(r.line, Rule::FloatDeterminism.name()) {
                    continue;
                }
                violations.push(Violation {
                    rule: Rule::FloatDeterminism,
                    path: PathBuf::from(path),
                    line: r.line as usize,
                    message: format!(
                        "float `{}` reduction in `{display}` in a bit-identity-critical \
                         module; register the fn in DETERMINISM_KERNELS (and cover it with \
                         the cross-path equivalence tests) or annotate why order cannot vary",
                        r.what,
                    ),
                });
            }
            for a in &f.accums {
                if fi.allowed(a.line, Rule::FloatDeterminism.name()) {
                    continue;
                }
                violations.push(Violation {
                    rule: Rule::FloatDeterminism,
                    path: PathBuf::from(path),
                    line: a.line as usize,
                    message: format!(
                        "split float accumulators in `{display}` reassociate the reduction; \
                         register the fn in DETERMINISM_KERNELS or annotate",
                    ),
                });
            }
        }
    }

    // honesty: registry rows must still point at reduction-bearing fns
    for (path, fn_display) in DETERMINISM_KERNELS {
        let Some(fi) = index.files.get(*path) else {
            continue; // file absent (fixture workspace): nothing to verify
        };
        let live = fi
            .fns
            .iter()
            .any(|f| f.display() == *fn_display && has_sites(f));
        if !live {
            violations.push(Violation {
                rule: Rule::FloatDeterminism,
                path: PathBuf::from(path),
                line: 0,
                message: format!(
                    "DETERMINISM_KERNELS registers `{fn_display}` but no such fn with a \
                     reduction site exists; remove the stale row or restore the kernel",
                ),
            });
        }
    }
    violations
}
