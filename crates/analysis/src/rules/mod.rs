//! Phase-2 graph lints: rules that query the [`SymbolGraph`] built from
//! the workspace [`WorkspaceIndex`].
//!
//! Each rule lives in its own module and returns plain
//! [`Violation`]s so the reporting pipeline (human and `--json`) is
//! shared with the line lints:
//!
//! - [`locks`] — lock-order inversion, re-entrant acquisition, and
//!   blocking-under-lock ([`crate::lint::Rule::LockDiscipline`]).
//! - [`casts`] — narrowing `as` casts on the quantization /
//!   serialization paths ([`crate::lint::Rule::CastTruncation`]).
//! - [`floatdet`] — float reductions outside the deterministic-kernel
//!   registry ([`crate::lint::Rule::FloatDeterminism`]).
//! - [`panics`] — panic sites reachable from CLI / serve entry points
//!   ([`crate::lint::Rule::PanicPath`]).
//! - [`taint`] — untrusted input reaching allocation, arithmetic, and
//!   error-discard sinks ([`crate::lint::Rule::UntrustedAlloc`],
//!   [`crate::lint::Rule::LenOverflow`],
//!   [`crate::lint::Rule::ErrorSwallow`]).
//!
//! [`run_full`] is the whole-analyzer driver: incremental index build
//! (phase 1), graph rules (phase 2), and the line lints, in one report.

pub mod casts;
pub mod floatdet;
pub mod locks;
pub mod panics;
pub mod taint;

use std::path::Path;

use crate::graph::SymbolGraph;
use crate::index::{build_index, load_cache, save_cache, IndexStats, WorkspaceIndex};
use crate::lint::{run_lint, LintConfig, LintReport, Violation};

/// Runs every graph rule over an already-built index.
pub fn run_graph_rules(index: &WorkspaceIndex) -> Vec<Violation> {
    let graph = SymbolGraph::build(index);
    let mut violations = Vec::new();
    violations.extend(locks::check(index, &graph));
    violations.extend(casts::check(index));
    violations.extend(floatdet::check(index));
    violations.extend(panics::check(index, &graph));
    violations.extend(taint::check(index, &graph));
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    violations
}

/// The combined two-phase report.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Line-lint findings (phase-0 rules carried over from v1).
    pub lint: LintReport,
    /// Graph-lint findings.
    pub graph: Vec<Violation>,
    /// What the incremental index build did.
    pub stats: IndexStats,
    /// Files in the symbol index.
    pub files_indexed: usize,
}

impl AnalysisReport {
    /// Whether both phases are clean.
    pub fn is_clean(&self) -> bool {
        self.lint.is_clean() && self.graph.is_empty()
    }

    /// Every violation from both phases, in report order.
    pub fn all_violations(&self) -> Vec<&Violation> {
        let mut v: Vec<&Violation> = self
            .lint
            .violations
            .iter()
            .chain(self.graph.iter())
            .collect();
        v.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        v
    }
}

/// Runs the full two-phase analysis over `config.root`. When `cache` is
/// set, a prior serialized index at that path is reused for files whose
/// content hash is unchanged, and the updated index is written back.
///
/// # Errors
///
/// Returns an error when the workspace cannot be read or the cache
/// cannot be written — infrastructure failures, never lint findings.
pub fn run_full(config: &LintConfig, cache: Option<&Path>) -> Result<AnalysisReport, String> {
    let cached = cache.and_then(load_cache);
    let (index, stats) = build_index(&config.root, cached.as_ref())?;
    if let Some(path) = cache {
        save_cache(path, &index)?;
    }
    let graph = run_graph_rules(&index);
    let lint = run_lint(config)?;
    Ok(AnalysisReport {
        lint,
        graph,
        stats,
        files_indexed: index.files.len(),
    })
}
