//! The taint phase: `untrusted-alloc`, `len-overflow`, and
//! `error-swallow`.
//!
//! The serving pillar accepts bytes from strangers — serve-protocol
//! request bodies, G4IP artifacts loaded off disk, CLI file/stdin
//! input. A hostile length field must never become an OOM or a silent
//! wraparound, so this rule asks the question no per-line lint can:
//! *can untrusted data reach a dangerous sink without passing a bound
//! check?* The interprocedural fixpoint lives in
//! [`SymbolGraph::compute_taint`]; this module owns the registries
//! (what is a source, what sanitizes, what sinks) and turns tainted
//! sink reaches into violations:
//!
//! - `untrusted-alloc` — a tainted count flows into
//!   `Vec::with_capacity(n)` / `vec![x; n]` / `reserve(n)`, or tainted
//!   data is appended via `push_str` in a fn that enforces no
//!   registered size limit.
//! - `len-overflow` — tainted operands in unchecked `usize` length
//!   arithmetic (`rows * dim`); a wrapped product passes a smaller
//!   allocation and the element loop then indexes out of bounds or
//!   builds a plausible-looking truncated artifact.
//! - `error-swallow` — a `Result` from a fallible parse of untrusted
//!   data discarded via `let _ =` / `.ok()`: hostile input that fails
//!   to parse must be reported, not silently defaulted.
//!
//! Taint *propagates* workspace-wide but violations are *reported*
//! only in [`TAINT_CRITICAL_PATHS`] — the ingestion files whose sinks
//! face raw input. Suppressions carry the concrete bound:
//!
//! ```text
//! // g4check: allow(untrusted-alloc): count_of caps rows at remaining()/4
//! let mut data = Vec::with_capacity(rows);
//! ```
//!
//! Registries follow the format-registry honesty convention: on the
//! live workspace (detected by this file being in the index) a source
//! row naming a missing fn, a sanitizer or source callee that no call
//! site uses, or a limit no comparison mentions is itself a violation,
//! so the tables cannot silently rot.

use std::path::PathBuf;

use crate::graph::{SymbolGraph, TaintConfig};
use crate::index::WorkspaceIndex;
use crate::lint::{Rule, Violation};

/// Files whose sinks face untrusted input: violations are reported
/// here. Taint still propagates through every workspace fn.
pub const TAINT_CRITICAL_PATHS: &[&str] = &[
    "crates/core/src/service.rs",
    "crates/eval/src/manifest.rs",
    "crates/tensor/src/serialize.rs",
    "src/bin/gnn4ip.rs",
];

/// Trust boundaries: (file, fn display name) rows whose parameters and
/// results carry untrusted bytes. Every `BinReader` read is a source —
/// artifact bytes come off disk or the wire and the kind/version
/// header authenticates nothing. `count_of` is deliberately absent: it
/// is the checked-`take` discipline (caps the count by
/// `remaining() / min_elem_bytes`) and registered as a sanitizer.
pub const TAINT_SOURCES: &[(&str, &str)] = &[
    ("crates/core/src/service.rs", "read_body"),
    ("crates/tensor/src/serialize.rs", "BinReader::open"),
    (
        "crates/tensor/src/serialize.rs",
        "BinReader::open_versioned",
    ),
    ("crates/tensor/src/serialize.rs", "BinReader::u8"),
    ("crates/tensor/src/serialize.rs", "BinReader::u32"),
    ("crates/tensor/src/serialize.rs", "BinReader::u64"),
    ("crates/tensor/src/serialize.rs", "BinReader::len_of"),
    ("crates/tensor/src/serialize.rs", "BinReader::f32"),
    ("crates/tensor/src/serialize.rs", "BinReader::str"),
    ("crates/tensor/src/serialize.rs", "BinReader::bytes"),
    ("crates/tensor/src/serialize.rs", "BinReader::matrix"),
    ("crates/tensor/src/serialize.rs", "read_artifact"),
    ("src/bin/gnn4ip.rs", "read_sources"),
];

/// External callee names whose results are untrusted wherever they are
/// called: raw file and stream reads outside the workspace.
pub const TAINT_SOURCE_CALLEES: &[&str] = &["read_to_string"];

/// Callee names whose results are never tainted: each returns a value
/// bounded by a trusted operand (`min`, `clamp`, the checked-`take`
/// discipline of `count_of`) or a checked result whose `Err` forces
/// explicit handling (`checked_mul`, `try_into`).
pub const TAINT_SANITIZERS: &[&str] = &[
    "min",
    "clamp",
    "checked_mul",
    "checked_add",
    "try_into",
    "count_of",
];

/// Limit idents: comparing a variable against one clears its taint for
/// the whole fn — the comparison is the bound the fn enforces.
pub const TAINT_LIMITS: &[&str] = &["max_body_bytes", "MAX_DIM", "MAX_SHARD_ROWS"];

/// Callees whose first argument is an allocation count.
pub const ALLOC_SINKS: &[&str] = &["with_capacity", "reserve", "reserve_exact"];

/// Callees whose discarded `Result` is an `error-swallow`: parsers of
/// untrusted data where `Err` means hostile or corrupt input.
pub const FALLIBLE_PARSERS: &[&str] = &["parse", "from_str", "open", "open_versioned"];

/// The analyzer's own source file: present in the index only on the
/// live workspace, where the registry honesty checks apply. Fixture
/// workspaces place files at critical paths without the registered
/// fns, so the checks must not fire there.
const SELF_PATH: &str = "crates/analysis/src/rules/taint.rs";

/// Runs the three taint rules over the whole graph.
pub fn check(index: &WorkspaceIndex, graph: &SymbolGraph<'_>) -> Vec<Violation> {
    let cfg = TaintConfig {
        source_fns: TAINT_SOURCES,
        source_callees: TAINT_SOURCE_CALLEES,
        sanitizers: TAINT_SANITIZERS,
        limits: TAINT_LIMITS,
    };
    let tainted = graph.compute_taint(&cfg);

    let mut violations = Vec::new();
    for (i, (path, f)) in graph.fns.iter().enumerate() {
        if f.is_test || !TAINT_CRITICAL_PATHS.contains(path) {
            continue;
        }
        let Some(fi) = index.files.get(*path) else {
            continue;
        };
        let display = f.display();
        // a fn that compares anything against a registered limit is
        // taken to enforce that limit on its growth path
        let enforces_limit = f.flows.iter().any(|d| {
            d.what
                .strip_prefix("cmp:")
                .is_some_and(|l| TAINT_LIMITS.contains(&l))
        });

        for (ci, call) in f.calls.iter().enumerate() {
            let count_arg = format!("a:{ci}:0");
            if ALLOC_SINKS.contains(&call.callee.as_str())
                && tainted[i].contains(&count_arg)
                && !fi.allowed(call.line, Rule::UntrustedAlloc.name())
            {
                violations.push(Violation {
                    rule: Rule::UntrustedAlloc,
                    path: PathBuf::from(*path),
                    line: call.line as usize,
                    message: format!(
                        "untrusted count reaches `{}` in `{display}`; bound it against a \
                         registered limit (or `min`/`count_of`) first, or annotate with \
                         '// g4check: allow(untrusted-alloc): <the bound that holds>'",
                        call.callee,
                    ),
                });
            }
            if call.callee == "push_str"
                && !enforces_limit
                && tainted[i].contains(&count_arg)
                && !fi.allowed(call.line, Rule::UntrustedAlloc.name())
            {
                violations.push(Violation {
                    rule: Rule::UntrustedAlloc,
                    path: PathBuf::from(*path),
                    line: call.line as usize,
                    message: format!(
                        "`{display}` grows a buffer with untrusted `push_str` and enforces \
                         no registered limit; compare the projected size against a \
                         TAINT_LIMITS bound before appending, or annotate with \
                         '// g4check: allow(untrusted-alloc): <the bound that holds>'",
                    ),
                });
            }
        }

        for d in &f.flows {
            let hot = |srcs: &[String]| srcs.iter().any(|s| tainted[i].contains(s));
            match d.what.as_str() {
                "alloc:vec!" => {
                    if hot(&d.srcs) && !fi.allowed(d.line, Rule::UntrustedAlloc.name()) {
                        violations.push(Violation {
                            rule: Rule::UntrustedAlloc,
                            path: PathBuf::from(*path),
                            line: d.line as usize,
                            message: format!(
                                "untrusted repeat count in `vec![_; n]` in `{display}`; \
                                 bound it first or annotate with \
                                 '// g4check: allow(untrusted-alloc): <the bound that holds>'",
                            ),
                        });
                    }
                }
                "arith:*" => {
                    if !f.sig_float && hot(&d.srcs) && !fi.allowed(d.line, Rule::LenOverflow.name())
                    {
                        violations.push(Violation {
                            rule: Rule::LenOverflow,
                            path: PathBuf::from(*path),
                            line: d.line as usize,
                            message: format!(
                                "unchecked `*` on untrusted operands in `{display}` can wrap; \
                                 use `checked_mul` or bound both operands, or annotate with \
                                 '// g4check: allow(len-overflow): <the bound that holds>'",
                            ),
                        });
                    }
                }
                _ => {
                    let Some(callee) = d
                        .what
                        .strip_prefix("discard:")
                        .or_else(|| d.what.strip_prefix("ok:"))
                    else {
                        continue;
                    };
                    if FALLIBLE_PARSERS.contains(&callee)
                        && hot(&d.srcs)
                        && !fi.allowed(d.line, Rule::ErrorSwallow.name())
                    {
                        violations.push(Violation {
                            rule: Rule::ErrorSwallow,
                            path: PathBuf::from(*path),
                            line: d.line as usize,
                            message: format!(
                                "`{display}` discards the `Result` of `{callee}` on untrusted \
                                 data; propagate or handle the error, or annotate with \
                                 '// g4check: allow(error-swallow): <why Err is impossible>'",
                            ),
                        });
                    }
                }
            }
        }
    }

    if index.files.contains_key(SELF_PATH) {
        violations.extend(staleness(index, graph));
    }
    violations
}

/// Registry honesty: every row must still match something real.
fn staleness(index: &WorkspaceIndex, graph: &SymbolGraph<'_>) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (path, fn_display) in TAINT_SOURCES {
        let live = index
            .files
            .get(*path)
            .is_some_and(|fi| fi.fns.iter().any(|f| f.display() == *fn_display));
        if !live {
            violations.push(Violation {
                rule: Rule::UntrustedAlloc,
                path: PathBuf::from(*path),
                line: 0,
                message: format!(
                    "TAINT_SOURCES registers `{fn_display}` but no such fn exists; \
                     remove the stale row or restore the trust boundary",
                ),
            });
        }
    }
    let called = |name: &str| {
        graph
            .fns
            .iter()
            .any(|(_, f)| f.calls.iter().any(|c| c.callee == name))
    };
    for name in TAINT_SANITIZERS {
        if !called(name) {
            violations.push(Violation {
                rule: Rule::UntrustedAlloc,
                path: PathBuf::from(SELF_PATH),
                line: 0,
                message: format!(
                    "TAINT_SANITIZERS registers `{name}` but no call site uses it; \
                     a sanitizer nothing calls only hides future findings — remove the row",
                ),
            });
        }
    }
    for name in TAINT_SOURCE_CALLEES {
        if !called(name) {
            violations.push(Violation {
                rule: Rule::UntrustedAlloc,
                path: PathBuf::from(SELF_PATH),
                line: 0,
                message: format!(
                    "TAINT_SOURCE_CALLEES registers `{name}` but no call site uses it; \
                     remove the stale row",
                ),
            });
        }
    }
    for name in TAINT_LIMITS {
        let compared = graph.fns.iter().any(|(_, f)| {
            f.flows
                .iter()
                .any(|d| d.what.strip_prefix("cmp:") == Some(name))
        });
        if !compared {
            violations.push(Violation {
                rule: Rule::UntrustedAlloc,
                path: PathBuf::from(SELF_PATH),
                line: 0,
                message: format!(
                    "TAINT_LIMITS registers `{name}` but no comparison mentions it; \
                     a limit nothing checks against clears no taint — remove the row",
                ),
            });
        }
    }
    violations
}
