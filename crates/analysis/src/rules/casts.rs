//! The `cast-truncation` graph rule.
//!
//! `as` casts to narrow integer types silently truncate and wrap; on
//! the int8 quantization and artifact-serialization paths that turns a
//! numeric bug into a *plausible-looking* artifact. On those paths
//! every narrowing cast must either be range-proven in the expression
//! itself (`.clamp(lo, hi) as i8`) or carry an annotation stating the
//! proven range:
//!
//! ```text
//! // g4check: allow(cast-truncation): zero_point is i8, i8 as u8 round-trips
//! w.u8(params.zero_point as u8);
//! ```
//!
//! Elsewhere in the workspace narrowing casts are unrestricted — the
//! rule is about the paths whose output bytes are contractual.

use std::path::PathBuf;

use crate::index::WorkspaceIndex;
use crate::lint::{Rule, Violation};

/// Files whose narrowing casts are contractual: quantization and the
/// binary artifact writers/readers.
pub const CAST_CRITICAL_PATHS: &[&str] = &[
    "crates/tensor/src/quant.rs",
    "crates/tensor/src/serialize.rs",
    "crates/eval/src/manifest.rs",
    "crates/eval/src/sharded.rs",
];

/// Runs the rule over the index.
pub fn check(index: &WorkspaceIndex) -> Vec<Violation> {
    let mut violations = Vec::new();
    for path in CAST_CRITICAL_PATHS {
        let Some(fi) = index.files.get(*path) else {
            continue; // fixture workspaces rarely have every critical file
        };
        for f in &fi.fns {
            if f.is_test {
                continue;
            }
            for cast in &f.casts {
                if cast.safe || fi.allowed(cast.line, Rule::CastTruncation.name()) {
                    continue;
                }
                violations.push(Violation {
                    rule: Rule::CastTruncation,
                    path: PathBuf::from(path),
                    line: cast.line as usize,
                    message: format!(
                        "narrowing `as {}` in `{}` on a quantization/serialization path; \
                         clamp the value in the expression or annotate with \
                         '// g4check: allow(cast-truncation): <proven range>'",
                        cast.ty,
                        f.display(),
                    ),
                });
            }
        }
    }
    violations
}
