//! The `lock-discipline` graph rule.
//!
//! Three findings, all driven by the per-call `held` guard sets the
//! indexer records and the transitive properties the graph computes:
//!
//! 1. **Blocking under a lock** — a call made while a guard is live
//!    that directly blocks (condvar wait, channel `recv`, line I/O, a
//!    blocking macro) or resolves to a workspace fn that transitively
//!    blocks or reaches a `NEVER_UNDER_LOCK` target (`BoundedQueue`
//!    push/pop, `PublicationSlot::publish`). The condvar handoff idiom
//!    (`self.wait(&cond, guard)`) is exempt by construction: the moved
//!    guard is subtracted from the held set before the check.
//! 2. **Re-entrant acquisition** — acquiring a lock id already held,
//!    directly or through a callee, which deadlocks a non-reentrant
//!    `Mutex`.
//! 3. **Lock-order inversion** — two lock ids acquired in both orders
//!    anywhere in the workspace (one witness per order, both cited).
//!
//! Test fns are out of scope; binaries and examples are in scope — a
//! deadlock in demo code is still a deadlock.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::graph::{SymbolGraph, BLOCKING_MACROS, BLOCKING_METHODS};
use crate::index::WorkspaceIndex;
use crate::lint::{Rule, Violation};

/// A witness for one ordered acquisition (held → acquired).
struct Witness {
    path: String,
    line: u32,
    fn_display: String,
}

/// Runs the rule over the whole graph.
pub fn check(index: &WorkspaceIndex, graph: &SymbolGraph<'_>) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut pairs: BTreeMap<(String, String), Witness> = BTreeMap::new();

    for (i, (path, f)) in graph.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = index.files.get(*path);
        let allowed =
            |line: u32| file.is_some_and(|fi| fi.allowed(line, Rule::LockDiscipline.name()));
        let mut flagged_lines: Vec<u32> = Vec::new();

        for (ci, call) in f.calls.iter().enumerate() {
            if call.held.is_empty() {
                continue;
            }
            // 1. blocking under a lock — direct name / macro check
            let direct_block = (call.method && BLOCKING_METHODS.contains(&call.callee.as_str()))
                || (BLOCKING_MACROS.contains(&call.callee.as_str()) && f.name != "fmt");
            let mut reason =
                direct_block.then(|| format!("`{}` blocks the calling thread", call.callee));
            // ... or via a resolved workspace callee
            if reason.is_none() {
                for &(cj, crate::graph::FnId(j)) in &graph.call_edges[i] {
                    if cj != ci {
                        continue;
                    }
                    if let Some(h) = graph.hazard(j) {
                        reason = Some(format!("`{}` {h}", graph.fns[j].1.display()));
                        break;
                    }
                }
            }
            if let Some(why) = reason {
                if !allowed(call.line) && !flagged_lines.contains(&call.line) {
                    flagged_lines.push(call.line);
                    violations.push(Violation {
                        rule: Rule::LockDiscipline,
                        path: PathBuf::from(path),
                        line: call.line as usize,
                        message: format!(
                            "{} called while holding {} in `{}`: {why}; release the guard \
                             first or annotate with a justification",
                            call.callee,
                            held_list(&call.held),
                            f.display(),
                        ),
                    });
                }
            }

            // 2 & 3. acquisition ordering — direct and through callees
            let mut acquired_here: Vec<String> = call.acquired.clone();
            for &(cj, crate::graph::FnId(j)) in &graph.call_edges[i] {
                if cj == ci {
                    acquired_here.extend(graph.acquires[j].iter().cloned());
                }
            }
            acquired_here.sort();
            acquired_here.dedup();
            for a in &acquired_here {
                for h in &call.held {
                    if a == h {
                        if !allowed(call.line) && !flagged_lines.contains(&call.line) {
                            flagged_lines.push(call.line);
                            violations.push(Violation {
                                rule: Rule::LockDiscipline,
                                path: PathBuf::from(path),
                                line: call.line as usize,
                                message: format!(
                                    "re-acquisition of `{a}` while already held in `{}` — a \
                                     non-reentrant Mutex deadlocks here",
                                    f.display(),
                                ),
                            });
                        }
                        continue;
                    }
                    pairs
                        .entry((h.clone(), a.clone()))
                        .or_insert_with(|| Witness {
                            path: (*path).to_string(),
                            line: call.line,
                            fn_display: f.display(),
                        });
                }
            }
        }
    }

    // 3. inversions: both orders witnessed
    for ((l, m), w) in &pairs {
        if l >= m {
            continue; // report each unordered pair once, from its lexically-first order
        }
        if let Some(rev) = pairs.get(&(m.clone(), l.clone())) {
            let fi = index.files.get(w.path.as_str());
            if fi.is_some_and(|f| f.allowed(w.line, Rule::LockDiscipline.name())) {
                continue;
            }
            violations.push(Violation {
                rule: Rule::LockDiscipline,
                path: PathBuf::from(&w.path),
                line: w.line as usize,
                message: format!(
                    "lock-order inversion: `{l}` then `{m}` here (in `{}`), but `{m}` then \
                     `{l}` at {}:{} (in `{}`) — pick one order",
                    w.fn_display, rev.path, rev.line, rev.fn_display,
                ),
            });
        }
    }

    violations
}

fn held_list(held: &[String]) -> String {
    held.iter()
        .map(|h| format!("`{h}`"))
        .collect::<Vec<_>>()
        .join(", ")
}
