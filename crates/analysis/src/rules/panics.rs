//! The `panic-path` graph rule.
//!
//! A panic reachable from a CLI subcommand or a serve worker is a
//! denial-of-service bug wearing a stack trace: one malformed request
//! or file takes the whole process down. This rule walks the call graph
//! from every entry point — each non-test fn defined in a `bin` source
//! file plus the serve-loop entry fns — and reports every reachable
//! panic site (`panic!`, `unreachable!`, `todo!`, `unimplemented!`,
//! `.unwrap()`, `.expect(`) that is not accounted for:
//!
//! - fns documenting their contract with a `# Panics` section are
//!   exempt (the panic is the API, callers were warned);
//! - sites annotated `// g4check: allow(panic-path): reason` (or the
//!   pre-existing `unwrap-in-lib` allow) are exempt;
//! - test fns are out of scope.
//!
//! Each finding cites a concrete call chain from the entry point so
//! the fix site is obvious.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::graph::SymbolGraph;
use crate::index::WorkspaceIndex;
use crate::lint::{Rule, Violation};

/// Entry points that are not in a `bin` file: (file, fn display name).
pub const EXTRA_ENTRY_POINTS: &[(&str, &str)] = &[("crates/core/src/service.rs", "run_service")];

/// Whether a workspace-relative path is a binary source file.
fn is_bin_path(path: &str) -> bool {
    path.split('/').any(|part| part == "bin") || path.ends_with("src/main.rs")
}

/// Runs the rule over the whole graph.
pub fn check(index: &WorkspaceIndex, graph: &SymbolGraph<'_>) -> Vec<Violation> {
    let mut entries = Vec::new();
    for (i, (path, f)) in graph.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        if is_bin_path(path) || EXTRA_ENTRY_POINTS.contains(&(*path, f.display().as_str())) {
            entries.push(i);
        }
    }
    let parent = graph.reach(&entries);

    // Dedupe by site: many entry points typically reach the same panic,
    // and one report per site is what a human fixes.
    let mut seen: BTreeMap<(String, u32), ()> = BTreeMap::new();
    let mut violations = Vec::new();
    for &i in parent.keys() {
        let (path, f) = graph.fns[i];
        if f.is_test || f.doc_panics {
            continue;
        }
        let Some(fi) = index.files.get(path) else {
            continue;
        };
        for p in &f.panics {
            if fi.allowed(p.line, Rule::PanicPath.name())
                || fi.allowed(p.line, "unwrap-in-lib")
                || seen.contains_key(&(path.to_string(), p.line))
            {
                continue;
            }
            seen.insert((path.to_string(), p.line), ());
            violations.push(Violation {
                rule: Rule::PanicPath,
                path: PathBuf::from(path),
                line: p.line as usize,
                message: format!(
                    "`{}` in `{}` is reachable from an entry point via {}; return an error, \
                     document the contract with a `# Panics` section, or annotate",
                    p.what,
                    f.display(),
                    graph.path_to(&parent, i),
                ),
            });
        }
    }
    violations
}
