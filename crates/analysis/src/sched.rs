//! A loom-lite deterministic-interleaving checker.
//!
//! Real `std::thread` tests sample a handful of interleavings per run and
//! call it a day; the races that matter — a reader observing a
//! half-written pair, an epoch that goes backwards — live in windows a
//! handful of samples will never hit. This module takes the opposite
//! trade: a concurrent algorithm is written once as a *step-level model*
//! (a [`Program`]), and the [`Explorer`] runs every bounded interleaving
//! of its threads' steps under a cooperative scheduler, asserting
//! invariants along each schedule. Exhaustive and deterministic: if a
//! two-step window exists where an invariant can break, some explored
//! schedule hits it, every time, on every machine.
//!
//! ## Model
//!
//! - Shared state is an explicit value (`Program::State`); each "thread"
//!   is a state machine advanced by [`Program::step`], one atomic action
//!   per call (an atomic load, an atomic store, acquiring a mutex, one
//!   field write). Anything the real code does non-atomically must take
//!   multiple steps — that is where the bugs are.
//! - The explorer does a depth-first search over scheduler choices,
//!   cloning the state at each branch point. A step may return
//!   [`Step::Blocked`] (e.g. a mutex is held); blocked threads are not
//!   scheduled, and a state where every unfinished thread is blocked is
//!   reported as a deadlock.
//! - Invariants are checked two ways: a step returns `Err` the moment a
//!   thread observes something impossible (the violating schedule is
//!   reported), and [`Program::check_final`] runs after every completed
//!   schedule.
//!
//! ## Bounds
//!
//! This is sequentially consistent exploration of *bounded* programs: a
//! fixed number of threads each running a fixed number of operations.
//! Weak-memory reorderings are not modeled (the algorithms under test
//! publish via a mutex plus an `AcqRel`/`Acquire` epoch counter, whose
//! interesting behaviours are visible under SC interleavings of the
//! store/load steps), and spin-retry loops must be bounded in the model.
//! Within those bounds the exploration is exhaustive — [`ExploreReport`]
//! says whether it was truncated by a cap, and the CI gate requires an
//! untruncated pass.

/// What one model step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread performed an action and has more to do.
    Progress,
    /// The thread performed its last action.
    Done,
    /// The thread cannot act right now (e.g. a mutex is held). The state
    /// must not have been mutated.
    Blocked,
}

/// A bounded concurrent algorithm expressed as step-level threads over
/// explicit shared state.
pub trait Program {
    /// Shared state, cloned at every scheduler branch point.
    type State: Clone;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Number of threads (thread ids are `0..threads()`).
    fn threads(&self) -> usize;

    /// Advances thread `tid` by one atomic action.
    ///
    /// # Errors
    ///
    /// Returns the description of an invariant the thread just observed
    /// broken; the explorer reports it with the schedule that got there.
    fn step(&self, state: &mut Self::State, tid: usize) -> Result<Step, String>;

    /// Invariants of a fully completed schedule.
    ///
    /// # Errors
    ///
    /// Returns the description of a violated end-state invariant.
    fn check_final(&self, _state: &Self::State) -> Result<(), String> {
        Ok(())
    }
}

/// A schedule (sequence of thread ids) that broke an invariant, with the
/// failure description — enough to replay the exact interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleViolation {
    /// Thread ids in execution order, ending at the violating step.
    pub schedule: Vec<usize>,
    /// What broke.
    pub message: String,
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (schedule: {:?})", self.message, self.schedule)
    }
}

/// What an exploration did.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Completed schedules explored (distinct by construction: each is a
    /// different sequence of scheduler choices).
    pub schedules: usize,
    /// Deepest schedule length reached.
    pub deepest: usize,
    /// Whether a cap stopped the search before it was exhaustive.
    pub truncated: bool,
    /// The first invariant violation found, if any.
    pub violation: Option<ScheduleViolation>,
}

impl ExploreReport {
    /// Whether the exploration was exhaustive and violation-free.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

/// Exhaustive DFS over scheduler choices of a [`Program`].
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Stop after this many completed schedules (guards against a model
    /// too large to exhaust; a capped run sets `truncated`).
    pub max_schedules: usize,
    /// Abort any schedule longer than this many steps — a model with an
    /// unbounded retry loop is a modeling bug, reported as a violation.
    pub max_depth: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            max_schedules: 1_000_000,
            max_depth: 10_000,
        }
    }
}

impl Explorer {
    /// An explorer with the default (effectively exhaustive for the
    /// models in this workspace) bounds.
    pub fn exhaustive() -> Self {
        Self::default()
    }

    /// Explores every interleaving of `program`'s threads.
    pub fn explore<P: Program>(&self, program: &P) -> ExploreReport {
        let mut report = ExploreReport::default();
        let state = program.init();
        let done = vec![false; program.threads()];
        let mut schedule = Vec::new();
        self.dfs(program, &state, &done, &mut schedule, &mut report);
        report
    }

    fn dfs<P: Program>(
        &self,
        program: &P,
        state: &P::State,
        done: &[bool],
        schedule: &mut Vec<usize>,
        report: &mut ExploreReport,
    ) {
        if report.violation.is_some() || report.truncated {
            return;
        }
        report.deepest = report.deepest.max(schedule.len());
        if done.iter().all(|&d| d) {
            if let Err(message) = program.check_final(state) {
                report.violation = Some(ScheduleViolation {
                    schedule: schedule.clone(),
                    message: format!("final check failed: {message}"),
                });
                return;
            }
            report.schedules += 1;
            if report.schedules >= self.max_schedules {
                report.truncated = true;
            }
            return;
        }
        if schedule.len() >= self.max_depth {
            report.violation = Some(ScheduleViolation {
                schedule: schedule.clone(),
                message: format!(
                    "schedule exceeded {} steps without completing — livelock or an \
                     unbounded retry loop in the model",
                    self.max_depth
                ),
            });
            return;
        }
        let mut any_ran = false;
        for tid in 0..done.len() {
            if done[tid] {
                continue;
            }
            let mut next_state = state.clone();
            match program.step(&mut next_state, tid) {
                Err(message) => {
                    schedule.push(tid);
                    report.violation = Some(ScheduleViolation {
                        schedule: schedule.clone(),
                        message,
                    });
                    schedule.pop();
                    return;
                }
                Ok(Step::Blocked) => continue,
                Ok(outcome) => {
                    any_ran = true;
                    schedule.push(tid);
                    let mut next_done = done.to_vec();
                    if outcome == Step::Done {
                        next_done[tid] = true;
                    }
                    self.dfs(program, &next_state, &next_done, schedule, report);
                    schedule.pop();
                    if report.violation.is_some() || report.truncated {
                        return;
                    }
                }
            }
        }
        if !any_ran {
            report.violation = Some(ScheduleViolation {
                schedule: schedule.clone(),
                message: "deadlock: every unfinished thread is blocked".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads, two independent steps each: 4!/2!2! = 6 schedules.
    struct Independent;
    impl Program for Independent {
        type State = [usize; 2];
        fn init(&self) -> Self::State {
            [0, 0]
        }
        fn threads(&self) -> usize {
            2
        }
        fn step(&self, state: &mut Self::State, tid: usize) -> Result<Step, String> {
            state[tid] += 1;
            Ok(if state[tid] == 2 {
                Step::Done
            } else {
                Step::Progress
            })
        }
    }

    #[test]
    fn counts_every_interleaving() {
        let report = Explorer::exhaustive().explore(&Independent);
        assert!(report.passed(), "{:?}", report.violation);
        assert_eq!(report.schedules, 6);
        assert_eq!(report.deepest, 4);
    }

    /// A classic lost update: two threads read-modify-write a counter in
    /// two non-atomic steps. Some interleaving must lose an increment.
    struct LostUpdate;
    #[derive(Clone)]
    struct LostUpdateState {
        counter: u32,
        local: [Option<u32>; 2],
    }
    impl Program for LostUpdate {
        type State = LostUpdateState;
        fn init(&self) -> Self::State {
            LostUpdateState {
                counter: 0,
                local: [None, None],
            }
        }
        fn threads(&self) -> usize {
            2
        }
        fn step(&self, state: &mut Self::State, tid: usize) -> Result<Step, String> {
            match state.local[tid] {
                None => {
                    state.local[tid] = Some(state.counter);
                    Ok(Step::Progress)
                }
                Some(read) => {
                    state.counter = read + 1;
                    Ok(Step::Done)
                }
            }
        }
        fn check_final(&self, state: &Self::State) -> Result<(), String> {
            if state.counter != 2 {
                return Err(format!("lost update: counter is {}", state.counter));
            }
            Ok(())
        }
    }

    #[test]
    fn finds_the_lost_update_race() {
        let report = Explorer::exhaustive().explore(&LostUpdate);
        let violation = report.violation.expect("the race must be found");
        assert!(violation.message.contains("lost update"), "{violation}");
    }

    /// Two threads that each lock A then B in opposite orders: the
    /// explorer must find the deadlock interleaving.
    struct DeadlockProne;
    #[derive(Clone, Default)]
    struct Locks {
        a: Option<usize>,
        b: Option<usize>,
        pc: [usize; 2],
    }
    impl Program for DeadlockProne {
        type State = Locks;
        fn init(&self) -> Self::State {
            Locks::default()
        }
        fn threads(&self) -> usize {
            2
        }
        fn step(&self, state: &mut Self::State, tid: usize) -> Result<Step, String> {
            // thread 0 locks a then b; thread 1 locks b then a
            let first_acquisition = state.pc[tid] == 0;
            let wants_a = (tid == 0) == first_acquisition;
            let lock = if wants_a { &mut state.a } else { &mut state.b };
            if lock.is_some() {
                return Ok(Step::Blocked);
            }
            *lock = Some(tid);
            if first_acquisition {
                state.pc[tid] = 1;
                Ok(Step::Progress)
            } else {
                Ok(Step::Done)
            }
        }
    }

    #[test]
    fn finds_the_lock_order_deadlock() {
        let report = Explorer::exhaustive().explore(&DeadlockProne);
        let violation = report.violation.expect("deadlock must be found");
        assert!(violation.message.contains("deadlock"), "{violation}");
        // found after two acquisitions (the model never releases, so the
        // first stuck state is two steps in whichever order DFS tries)
        assert_eq!(violation.schedule.len(), 2);
    }

    #[test]
    fn truncation_is_reported_not_silent() {
        let explorer = Explorer {
            max_schedules: 3,
            max_depth: 100,
        };
        let report = explorer.explore(&Independent);
        assert!(report.truncated);
        assert!(!report.passed());
        assert_eq!(report.schedules, 3);
    }

    /// A thread that spins forever must be reported as a livelock, not
    /// hang the explorer.
    struct Spinner;
    impl Program for Spinner {
        type State = ();
        fn init(&self) -> Self::State {}
        fn threads(&self) -> usize {
            1
        }
        fn step(&self, _state: &mut Self::State, _tid: usize) -> Result<Step, String> {
            Ok(Step::Progress)
        }
    }

    #[test]
    fn unbounded_models_are_reported() {
        let explorer = Explorer {
            max_schedules: 10,
            max_depth: 50,
        };
        let report = explorer.explore(&Spinner);
        let violation = report.violation.expect("livelock must be reported");
        assert!(violation.message.contains("livelock"), "{violation}");
    }
}
