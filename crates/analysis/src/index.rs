//! Phase 1 of the two-phase analyzer: the workspace **symbol index**.
//!
//! A lightweight zero-dependency Rust tokenizer and item indexer that
//! records, per function: definitions (name, `impl` owner, module path),
//! call sites with the set of `Mutex` guards live at each one, guard
//! acquisitions, narrowing `as` casts, float reductions, panic sites,
//! and intra-fn dataflow edges ([`FlowRecord`]: let-bindings,
//! assignments, call-argument positions, return values, field
//! projections) consumed by the interprocedural taint fixpoint in the
//! graph phase. The per-file result ([`FileIndex`]) is a *pure function of
//! that file's text* — all cross-file reasoning happens in the graph
//! phase ([`crate::graph`]) — so an index can be updated incrementally:
//! files whose FNV-1a content hash is unchanged reuse their cached
//! entry verbatim (the shape borrowed from incremental automaton
//! construction: build once, update per changed input, query many
//! analyses).
//!
//! The index is serialized to `target/g4check/index.v2` in a
//! hand-rolled line format (the crate is dependency-free by design); a
//! cache that fails to parse for any reason is discarded and rebuilt,
//! never trusted partially.
//!
//! Deliberate precision limits, documented so misses are not mysteries:
//!
//! - A `.lock()` call is a guard acquisition only when its receiver
//!   resolves to a known field or local (`self.inner`, a typed local, a
//!   constructor-inferred local). `stdin().lock()` and friends resolve
//!   to nothing and create no guard — an io lock is not a `Mutex`.
//! - Method calls resolve to a receiver type only via `self`, typed
//!   locals/params, same-file struct fields, or `Type::method` paths.
//! - Guard liveness is statement- and scope-tracked (`let` bindings,
//!   `if let`/`while let` heads, `drop`, moves into calls — the condvar
//!   handoff `self.wait(&cond, guard)` kills the guard for the duration
//!   of the call); `match` arms that bind a guard are not modeled.
//! - Dataflow edges are statement-granular may-flow facts: a binding
//!   receives every value identifier and call result seen on its
//!   right-hand side, so `let n = if a { b } else { c }` merges all
//!   three. Block tails inside `if`/`else` chains can be dropped at
//!   brace boundaries — the taint phase treats every edge as an
//!   over-approximation, never a proof of absence.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lint::{
    classify, collect_rs_files, parse_allows, strip_source, test_regions, FileKind, StrippedLine,
};

/// Cache format version; bumped whenever any record shape changes.
/// v2 added dataflow records and positional parameter names.
pub const INDEX_VERSION: u32 = 2;

/// FNV-1a 64-bit hash — the workspace's standard content address.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRecord {
    /// Callee name; a trailing `!` marks a macro invocation.
    pub callee: String,
    /// Resolved receiver/owner type head (`BoundedQueue` for
    /// `queue.push(..)` with a typed local), when known.
    pub recv: Option<String>,
    /// `.name(..)` method-call form (vs. free or `Type::name` call).
    pub method: bool,
    /// 1-based source line.
    pub line: u32,
    /// Lock ids of guards live at the call, minus guards moved *into*
    /// the call (the condvar handoff idiom).
    pub held: Vec<String>,
    /// Lock ids this call acquires (`.lock()` on a resolved receiver,
    /// or a call to a same-file guard-returning helper).
    pub acquired: Vec<String>,
    /// A live guard was moved into this call as a bare argument.
    pub consumed_guard: bool,
}

/// One narrowing `as` cast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastRecord {
    /// 1-based source line.
    pub line: u32,
    /// Target type (`i8`, `u8`, `i16`, `u16`, `i32`, `u32`).
    pub ty: String,
    /// The value was range-proven immediately before the cast
    /// (`.clamp(lo, hi) as T`).
    pub safe: bool,
}

/// One float-reduction site (`sum`, `product`, float `fold`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionRecord {
    /// 1-based source line.
    pub line: u32,
    /// Which reduction: `sum`, `product`, or `fold`.
    pub what: String,
    /// The site shows a float context (turbofish, line text, or the
    /// enclosing fn signature mentions `f32`/`f64`).
    pub hinted: bool,
}

/// A split-accumulator initialization (`let (mut s0, mut s1) = (0.0, ..)`
/// or `let mut acc = [0.0f32; N]`) — the reassociation idiom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumRecord {
    /// 1-based source line.
    pub line: u32,
}

/// One panic site (`panic!`, `unreachable!`, `todo!`, `unimplemented!`,
/// `.unwrap()`, `.expect(`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicRecord {
    /// 1-based source line.
    pub line: u32,
    /// Which construct panics.
    pub what: String,
}

/// One intra-fn dataflow fact, consumed by the taint fixpoint in the
/// graph phase.
///
/// Node keys: `v:<name>` (a local or parameter), `c:<k>` (the result of
/// the `k`-th entry in [`FnRecord::calls`]), `a:<k>:<p>` (argument
/// position `p` of call `k`, `self` receivers excluded), and `r` (the
/// fn's return value). A handful of destinations carry *facts* rather
/// than value edges:
///
/// - `arith` with `what = "arith:*"`: an unchecked `a * b`
///   multiplication whose ident operands are the srcs;
/// - `alloc` with `what = "alloc:vec!"`: the repeat count of a
///   `vec![x; n]`;
/// - `ok` / `_` with `what = "ok:<callee>"` / `"discard:<callee>"`: a
///   call result discarded via `.ok()` or `let _ =`;
/// - a `v:` destination with `what = "cmp:<other>"` and empty srcs
///   records a `<`/`>`/`<=`/`>=` comparison of the variable against
///   `<other>` (taint-clearing when `<other>` is a registered limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// 1-based source line of the fact.
    pub line: u32,
    /// Destination node key.
    pub dst: String,
    /// Source node keys feeding the destination (may be empty for
    /// comparison facts).
    pub srcs: Vec<String>,
    /// Edge kind: `let`, `assign`, `iter`, `arg`, `recv:<callee>`,
    /// `ret`, or one of the fact kinds documented on the type.
    pub what: String,
}

/// Everything recorded about one function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnRecord {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` owner type, for methods.
    pub owner: Option<String>,
    /// Enclosing module path inside the file (`a::b`), for messages.
    pub module: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Defined under `#[test]`/`#[cfg(test)]` or in a test file.
    pub is_test: bool,
    /// The doc comment above the fn has a `# Panics` section.
    pub doc_panics: bool,
    /// The signature returns a `MutexGuard`.
    pub returns_guard: bool,
    /// The signature mentions `f32`/`f64`.
    pub sig_float: bool,
    /// Positional parameter names (`self` receivers excluded,
    /// unparseable patterns kept as `_` so positions stay aligned with
    /// call-site argument indices).
    pub params: Vec<String>,
    /// Call sites, in source order.
    pub calls: Vec<CallRecord>,
    /// Narrowing casts.
    pub casts: Vec<CastRecord>,
    /// Float reductions.
    pub reductions: Vec<ReductionRecord>,
    /// Split-accumulator initializations.
    pub accums: Vec<AccumRecord>,
    /// Panic sites.
    pub panics: Vec<PanicRecord>,
    /// Intra-fn dataflow facts, in source order.
    pub flows: Vec<FlowRecord>,
}

impl FnRecord {
    /// Display name: `Owner::name` for methods, bare `name` otherwise.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The index of one source file — a pure function of its text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileIndex {
    /// FNV-1a hash of the file's bytes, the incremental-reuse key.
    pub hash: u64,
    /// Every function defined in the file, in source order.
    pub fns: Vec<FnRecord>,
    /// `g4check: allow(rule)` lines: (1-based line, rule name). Each
    /// annotation is recorded for its own line and the line below.
    pub allows: Vec<(u32, String)>,
}

impl FileIndex {
    /// Whether `rule` is allowed on 1-based `line`.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows.iter().any(|(l, r)| *l == line && r == rule)
    }
}

/// The whole-workspace symbol index, keyed by `/`-separated relative
/// path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkspaceIndex {
    /// Per-file indexes.
    pub files: BTreeMap<String, FileIndex>,
}

/// What an incremental [`build_index`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Files tokenized and indexed from scratch.
    pub reindexed: usize,
    /// Files reused from the cache by content hash.
    pub reused: usize,
    /// Cached files no longer present in the workspace.
    pub removed: usize,
}

/// Builds (or incrementally updates) the symbol index for the workspace
/// at `root`. Files whose content hash matches `cached` are reused
/// without re-tokenizing.
///
/// # Errors
///
/// Returns an error when the workspace or a source file cannot be read.
pub fn build_index(
    root: &Path,
    cached: Option<&WorkspaceIndex>,
) -> Result<(WorkspaceIndex, IndexStats), String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut index = WorkspaceIndex::default();
    let mut stats = IndexStats::default();
    for rel in &files {
        if classify(rel).is_none() {
            continue;
        }
        let rel_key = rel_key(rel);
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {}: {e}", rel.display()))?;
        let hash = fnv1a(text.as_bytes());
        if let Some(prev) = cached.and_then(|c| c.files.get(&rel_key)) {
            if prev.hash == hash {
                index.files.insert(rel_key, prev.clone());
                stats.reused += 1;
                continue;
            }
        }
        index.files.insert(rel_key.clone(), index_file(rel, &text));
        stats.reindexed += 1;
    }
    if let Some(c) = cached {
        stats.removed = c
            .files
            .keys()
            .filter(|k| !index.files.contains_key(*k))
            .count();
    }
    Ok((index, stats))
}

/// Normalizes a relative path into the index key form.
pub fn rel_key(rel: &Path) -> String {
    rel.to_string_lossy().replace('\\', "/")
}

/// Default cache location under the workspace root.
pub fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("g4check").join("index.v2")
}

// --- tokenizer ----------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    Num(String),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: u32,
}

fn tokenize(lines: &[StrippedLine]) -> Vec<Token> {
    let mut toks = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = (idx + 1) as u32;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let s: String = chars[start..i].iter().collect();
                toks.push(Token {
                    tok: Tok::Ident(s),
                    line: lineno,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let s: String = chars[start..i].iter().collect();
                toks.push(Token {
                    tok: Tok::Num(s),
                    line: lineno,
                });
            } else {
                toks.push(Token {
                    tok: Tok::Punct(c),
                    line: lineno,
                });
                i += 1;
            }
        }
    }
    toks
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

fn num_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Num(s)) => Some(s.as_str()),
        _ => None,
    }
}

// --- structural pass ----------------------------------------------------

#[derive(Debug, Clone)]
struct RawFn {
    name: String,
    owner: Option<String>,
    module: String,
    line: u32,
    /// Token index of the `fn` keyword (for nested-fn skipping).
    header_tok: usize,
    /// Token range of the body, inside the braces.
    body: Option<(usize, usize)>,
    params: Vec<(String, String)>,
    /// Positional parameter names (`self` excluded, `_` placeholders).
    param_names: Vec<String>,
    returns_guard: bool,
    sig_float: bool,
    attr_test: bool,
    doc_panics: bool,
}

#[derive(Debug, Clone, Default)]
struct RawType {
    fields: BTreeMap<String, String>,
}

/// Wrapper types whose first generic argument carries the interesting
/// type head.
const WRAPPERS: &[&str] = &["Arc", "Rc", "Box", "RefCell", "Cell", "Option"];

/// Extracts the interesting head of a type written as tokens:
/// `&mut Arc<BoundedQueue<T>>` → `BoundedQueue`.
fn type_head(toks: &[Token], mut i: usize, end: usize) -> Option<String> {
    while i < end {
        match &toks[i].tok {
            Tok::Punct('&') | Tok::Punct('\'') => i += 1,
            Tok::Ident(s) if s == "mut" || s == "dyn" => i += 1,
            Tok::Ident(s)
                if toks
                    .get(i.wrapping_sub(1))
                    .is_some_and(|t| t.tok == Tok::Punct('\''))
                    && !s.is_empty() =>
            {
                i += 1
            }
            _ => break,
        }
    }
    // path: A::B::C — head is the last segment
    let mut head: Option<(String, usize)> = None;
    while i < end {
        let Some(seg) = ident_at(toks, i) else { break };
        head = Some((seg.to_string(), i));
        if punct_at(toks, i + 1) == Some(':') && punct_at(toks, i + 2) == Some(':') {
            i += 3;
        } else {
            break;
        }
    }
    let (name, at) = head?;
    if WRAPPERS.contains(&name.as_str()) && punct_at(toks, at + 1) == Some('<') {
        return type_head(toks, at + 2, end);
    }
    Some(name)
}

/// Skips a balanced `<...>` generic group starting at `i` (which must be
/// `<`), returning the index just past the matching `>`.
fn skip_generics(toks: &[Token], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('<') => depth += 1,
            Some('>') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            Some(';') | Some('{') => return i, // malformed; bail
            _ => {}
        }
        i += 1;
    }
    i
}

/// Finds the token index of the matching close for the open bracket at
/// `i` (`(`/`[`/`{`), or `toks.len()` if unbalanced.
fn matching_close(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match punct_at(toks, j) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

struct Structure {
    fns: Vec<RawFn>,
    types: BTreeMap<String, RawType>,
}

fn structural_pass(
    toks: &[Token],
    lines: &[StrippedLine],
    in_test: &[bool],
    file_is_test: bool,
) -> Structure {
    let mut fns = Vec::new();
    let mut types: BTreeMap<String, RawType> = BTreeMap::new();
    let mut depth = 0i32;
    let mut mods: Vec<(String, i32)> = Vec::new();
    let mut owners: Vec<(String, i32)> = Vec::new();
    // scope pushes waiting for their `{`
    enum Pending {
        Mod(String),
        Owner(String),
    }
    let mut pending: Option<Pending> = None;

    let mut i = 0;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                match pending.take() {
                    Some(Pending::Mod(m)) => mods.push((m, depth)),
                    Some(Pending::Owner(o)) => owners.push((o, depth)),
                    None => {}
                }
                i += 1;
            }
            Tok::Punct('}') => {
                if mods.last().is_some_and(|(_, d)| *d == depth) {
                    mods.pop();
                }
                if owners.last().is_some_and(|(_, d)| *d == depth) {
                    owners.pop();
                }
                depth -= 1;
                i += 1;
            }
            Tok::Punct(';') => {
                pending = None; // `mod x;` / `impl T;` never happens, but be safe
                i += 1;
            }
            Tok::Ident(kw) if kw == "mod" => {
                if let Some(name) = ident_at(toks, i + 1) {
                    if punct_at(toks, i + 2) == Some('{') {
                        pending = Some(Pending::Mod(name.to_string()));
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                let is_impl = kw == "impl";
                // collect header up to the `{` (or `;` for `impl Trait for T {}`-less)
                let mut j = i + 1;
                if is_impl && punct_at(toks, j) == Some('<') {
                    j = skip_generics(toks, j);
                }
                let start = j;
                while j < toks.len()
                    && punct_at(toks, j) != Some('{')
                    && punct_at(toks, j) != Some(';')
                {
                    j += 1;
                }
                let owner = if is_impl {
                    let mut for_at = None;
                    let mut k = start;
                    while k < j {
                        if ident_at(toks, k) == Some("for") {
                            for_at = Some(k + 1);
                        }
                        k += 1;
                    }
                    type_head(toks, for_at.unwrap_or(start), j)
                } else {
                    ident_at(toks, start).map(str::to_string)
                };
                if punct_at(toks, j) == Some('{') {
                    if let Some(o) = owner {
                        pending = Some(Pending::Owner(o));
                    }
                }
                i = j;
            }
            Tok::Ident(kw) if kw == "struct" => {
                if let Some(name) = ident_at(toks, i + 1) {
                    let mut j = i + 2;
                    if punct_at(toks, j) == Some('<') {
                        j = skip_generics(toks, j);
                    }
                    // skip a `where` clause up to `{`/`;`/`(`
                    while j < toks.len()
                        && !matches!(punct_at(toks, j), Some('{') | Some(';') | Some('('))
                    {
                        j += 1;
                    }
                    if punct_at(toks, j) == Some('{') {
                        let close = matching_close(toks, j);
                        let rt = parse_struct_fields(toks, j + 1, close);
                        types.insert(name.to_string(), rt);
                        i = close + 1;
                        continue;
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = ident_at(toks, i + 1) {
                    let line = toks[i].line;
                    let mut j = i + 2;
                    if punct_at(toks, j) == Some('<') {
                        j = skip_generics(toks, j);
                    }
                    if punct_at(toks, j) != Some('(') {
                        i += 1;
                        continue;
                    }
                    let params_close = matching_close(toks, j);
                    let params = parse_params(toks, j + 1, params_close);
                    let param_names = param_names(toks, j + 1, params_close);
                    // return type / where clause up to body `{` or `;`
                    let mut k = params_close + 1;
                    while k < toks.len() && !matches!(punct_at(toks, k), Some('{') | Some(';')) {
                        k += 1;
                    }
                    let sig_range = (j, k);
                    let returns_guard = (sig_range.0..sig_range.1)
                        .any(|t| matches!(ident_at(toks, t), Some("MutexGuard")));
                    let sig_float = (sig_range.0..sig_range.1)
                        .any(|t| matches!(ident_at(toks, t), Some("f32") | Some("f64")));
                    let body = if punct_at(toks, k) == Some('{') {
                        Some((k + 1, matching_close(toks, k)))
                    } else {
                        None
                    };
                    let (attr_test, doc_panics) = attrs_above(lines, line as usize);
                    let is_test_region = in_test.get(line as usize - 1).copied().unwrap_or(false);
                    fns.push(RawFn {
                        name: name.to_string(),
                        owner: owners.last().map(|(o, _)| o.clone()),
                        module: mods
                            .iter()
                            .map(|(m, _)| m.as_str())
                            .collect::<Vec<_>>()
                            .join("::"),
                        line,
                        header_tok: i,
                        body,
                        params,
                        param_names,
                        returns_guard,
                        sig_float,
                        attr_test: attr_test || is_test_region || file_is_test,
                        doc_panics,
                    });
                    // keep walking *into* the body so nested items are found
                    i = k;
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    Structure { fns, types }
}

/// Parses `name: Type` struct fields between `start` and `end`.
fn parse_struct_fields(toks: &[Token], start: usize, end: usize) -> RawType {
    let mut rt = RawType::default();
    let mut i = start;
    while i < end {
        // field name is the ident directly before a `:` at depth 0
        if let (Some(name), Some(':')) = (ident_at(toks, i), punct_at(toks, i + 1)) {
            if punct_at(toks, i + 2) != Some(':') && name != "pub" && name != "crate" {
                // type runs to the next top-level comma
                let mut j = i + 2;
                let mut d = 0i32;
                while j < end {
                    match punct_at(toks, j) {
                        Some('<') | Some('(') | Some('[') => d += 1,
                        Some('>') | Some(')') | Some(']') => d -= 1,
                        Some(',') if d <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(head) = type_head(toks, i + 2, j) {
                    rt.fields.insert(name.to_string(), head);
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    rt
}

/// Parses fn params into (name, type head) pairs; `self` receivers are
/// skipped.
fn parse_params(toks: &[Token], start: usize, end: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = start;
    let mut arg_start = start;
    let mut d = 0i32;
    let push_arg = |s: usize, e: usize, out: &mut Vec<(String, String)>| {
        // pattern `[mut] name : Type`
        let mut k = s;
        if ident_at(toks, k) == Some("mut") {
            k += 1;
        }
        let Some(name) = ident_at(toks, k) else {
            return;
        };
        if name == "self" || punct_at(toks, k + 1) != Some(':') {
            return;
        }
        if let Some(head) = type_head(toks, k + 2, e) {
            out.push((name.to_string(), head));
        }
    };
    while i < end {
        match punct_at(toks, i) {
            Some('<') | Some('(') | Some('[') => d += 1,
            Some('>') | Some(')') | Some(']') => d -= 1,
            Some(',') if d <= 0 => {
                push_arg(arg_start, i, &mut out);
                arg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    push_arg(arg_start, end, &mut out);
    out
}

/// Parses fn params into positional *names only*. Unlike
/// [`parse_params`], every non-`self` parameter yields an entry (an
/// unparseable pattern becomes `_`), so the vector's indices line up
/// with call-site argument positions — the alignment the taint phase
/// relies on to map `a:<k>:<p>` onto the callee's `p`-th parameter.
fn param_names(toks: &[Token], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let seg = |s: usize, e: usize, out: &mut Vec<String>| {
        if s >= e {
            return;
        }
        // first usable ident: skip `mut`/`ref` and lifetime names
        let mut name = None;
        let mut k = s;
        while k < e {
            if let Some(id) = ident_at(toks, k) {
                let is_lifetime = k >= 1 && punct_at(toks, k - 1) == Some('\'');
                if id != "mut" && id != "ref" && !is_lifetime {
                    name = Some(id);
                    break;
                }
            }
            k += 1;
        }
        match name {
            Some("self") => {} // receiver, not an argument position
            Some(n) => out.push(n.to_string()),
            None => out.push("_".to_string()),
        }
    };
    let mut i = start;
    let mut arg_start = start;
    let mut d = 0i32;
    while i < end {
        match punct_at(toks, i) {
            Some('<') | Some('(') | Some('[') => d += 1,
            Some('>') | Some(')') | Some(']') => d -= 1,
            Some(',') if d <= 0 => {
                seg(arg_start, i, &mut out);
                arg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    seg(arg_start, end, &mut out);
    out
}

/// Walks upward from the line above a fn through its doc comments and
/// attributes, returning (`#[test]`-ish attr present, `# Panics` doc
/// section present).
fn attrs_above(lines: &[StrippedLine], fn_line_1based: usize) -> (bool, bool) {
    let mut attr_test = false;
    let mut doc_panics = false;
    let mut idx = fn_line_1based.saturating_sub(1); // 0-based index of fn line
    while idx > 0 {
        idx -= 1;
        let l = &lines[idx];
        let code = l.code.trim();
        let is_attr = code.starts_with("#[") || code.starts_with("#![");
        if !code.is_empty() && !is_attr {
            break;
        }
        if code.is_empty() && l.comment.is_empty() {
            break;
        }
        if is_attr && (code.contains("test") || code.contains("bench")) {
            attr_test = true;
        }
        if l.comment.contains("# Panics") {
            doc_panics = true;
        }
    }
    (attr_test, doc_panics)
}

// --- body analysis ------------------------------------------------------

/// Methods that create a guard when called on a resolvable lock field.
const LOCK_METHODS: &[&str] = &["lock"];

/// Macro names worth recording as calls (blocking-I/O macros).
const IO_MACROS: &[&str] = &["write", "writeln", "print", "println", "eprint", "eprintln"];

/// Panic-site macro names.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Narrowing cast targets tracked by the cast-truncation rule.
const NARROW_TYPES: &[&str] = &["i8", "u8", "i16", "u16", "i32", "u32"];

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "in", "else", "move",
    "ref", "as", "let", "fn", "impl", "where", "unsafe", "use", "pub", "crate", "super", "dyn",
    "mut", "box", "await",
];

#[derive(Debug, Clone)]
struct Guard {
    name: Option<String>,
    ids: Vec<String>,
    bind_depth: Option<i32>,
    alive: bool,
}

#[derive(Debug)]
struct LetCtx {
    name: Option<String>,
    depth: i32,
    cond: bool,
    rhs_started: bool,
    mut_count: usize,
    guards: Vec<usize>,
    line: u32,
    /// token index of the `:` type annotation, if any
    ty: Option<(usize, usize)>,
    accum_emitted: bool,
}

#[derive(Debug)]
struct OpenCall {
    rec: usize,
    close: usize,
    callee: String,
    held_at_open: Vec<String>,
    consumed: Vec<usize>,
}

/// One open call frame in the dataflow pass: collects per-position
/// argument sources until the call's `)` closes.
#[derive(Debug)]
struct FlowCall {
    /// Token index of the matching `)`.
    close: usize,
    /// Index into `rec.calls`, or `None` for transparent calls
    /// (`.unwrap()` / `.expect(`) whose receiver value passes through.
    rec: Option<usize>,
    callee: String,
    /// Receiver value: (node key, callee the node came from — empty for
    /// a plain variable root).
    recv: Option<(String, String)>,
    /// Sources per argument position, split on top-level commas.
    args: Vec<Vec<String>>,
    /// Paren/bracket depth at the callee ident, for comma splitting.
    open_bdepth: i32,
    line: u32,
}

/// Dataflow-extraction state threaded through `analyze_body`. Tracks
/// open call frames and the current statement's value sources; emits
/// [`FlowRecord`]s into the fn record as statements seal.
#[derive(Debug, Default)]
struct FlowPass {
    fcalls: Vec<FlowCall>,
    /// Value sources seen since the last statement boundary, outside
    /// any open call.
    stmt_srcs: Vec<String>,
    /// The statement began with `return`.
    is_return: bool,
    /// Destination of a plain `x = ...` reassignment, sealed at `;`.
    assign_dst: Option<String>,
    /// Last statement-level call: (node, callee) — the `let _ =`
    /// discard target.
    last_call: Option<(String, String)>,
    /// Last closed call: (close token index, node, callee) — the
    /// receiver of a chained `foo().bar(` continuation.
    last_close: Option<(usize, String, String)>,
}

impl FlowPass {
    /// Routes a value node to the innermost open context: the current
    /// argument of the innermost open call, else the statement sources.
    fn push_value(&mut self, node: String) {
        let bucket = match self.fcalls.last_mut() {
            // g4check: allow(unwrap-in-lib): open_call seeds every frame with one bucket
            Some(fc) => fc.args.last_mut().expect("call frame has an arg bucket"),
            None => &mut self.stmt_srcs,
        };
        if !bucket.contains(&node) {
            bucket.push(node);
        }
    }

    /// Opens a call frame for the callee ident at `i` with its `(` at
    /// `paren`. `rec_idx` is the `rec.calls` slot the call landed in
    /// (`None` for transparent panic-method calls).
    #[allow(clippy::too_many_arguments)]
    fn open_call(
        &mut self,
        toks: &[Token],
        i: usize,
        paren: usize,
        callee: &str,
        rec_idx: Option<usize>,
        line: u32,
        bdepth: i32,
    ) {
        let mut recv = None;
        if i >= 1 && punct_at(toks, i - 1) == Some('.') {
            if let Some(chain) = recv_chain(toks, i - 1) {
                // variable-rooted chain: the root carries the value
                // (`h.rows.min(..)` flows from `v:h`); `self` fields
                // are not tracked.
                if let Some(root) = chain.first().filter(|r| r.as_str() != "self") {
                    recv = Some((format!("v:{root}"), String::new()));
                }
            } else if i >= 2 {
                // expression receiver: `prev()?.name(` — chain from the
                // previous call's value node if it closed right before.
                let mut j = i - 2;
                if punct_at(toks, j) == Some('?') && j >= 1 {
                    j -= 1;
                }
                let mut consumed = None;
                if let Some((close, node, carried)) = &self.last_close {
                    if *close == j {
                        recv = Some((node.clone(), carried.clone()));
                        consumed = Some(node.clone());
                    }
                }
                // the chain consumes the receiver's value: without this
                // `let n = src().min(64)` would keep the unsanitized
                // `c:src` among the statement's sources
                if let Some(node) = consumed {
                    let bucket = match self.fcalls.last_mut() {
                        // g4check: allow(unwrap-in-lib): open_call seeds every frame with one bucket
                        Some(fc) => fc.args.last_mut().expect("call frame has an arg bucket"),
                        None => &mut self.stmt_srcs,
                    };
                    bucket.retain(|s| s != &node);
                }
            }
        }
        self.fcalls.push(FlowCall {
            close: matching_close(toks, paren),
            rec: rec_idx,
            callee: callee.to_string(),
            recv,
            args: vec![Vec::new()],
            open_bdepth: bdepth,
            line,
        });
    }

    /// Starts a new argument bucket on the innermost call whose
    /// top-level comma this is.
    fn comma(&mut self, bdepth: i32) {
        if let Some(fc) = self.fcalls.last_mut() {
            if bdepth == fc.open_bdepth + 1 {
                fc.args.push(Vec::new());
            }
        }
    }

    /// Closes any call frame ending at token `i`: emits its `arg` and
    /// `recv` flows and pushes its value node into the parent context.
    fn close_call(&mut self, i: usize, rec: &mut FnRecord) {
        while let Some(pos) = self.fcalls.iter().rposition(|f| f.close == i) {
            let fc = self.fcalls.remove(pos);
            let Some(k) = fc.rec else {
                // transparent `.unwrap()`/`.expect(`: the receiver's
                // value passes through unchanged
                if let Some((rnode, rcallee)) = fc.recv {
                    self.push_value(rnode.clone());
                    self.last_close = Some((i, rnode, rcallee));
                } else {
                    self.last_close = None;
                }
                continue;
            };
            for (p, srcs) in fc.args.iter().enumerate() {
                if !srcs.is_empty() {
                    rec.flows.push(FlowRecord {
                        line: fc.line,
                        dst: format!("a:{k}:{p}"),
                        srcs: srcs.clone(),
                        what: "arg".to_string(),
                    });
                }
            }
            let node = format!("c:{k}");
            if let Some((rnode, rcallee)) = &fc.recv {
                rec.flows.push(FlowRecord {
                    line: fc.line,
                    dst: node.clone(),
                    srcs: vec![rnode.clone()],
                    what: format!("recv:{}", fc.callee),
                });
                if fc.callee == "ok" && rnode.starts_with("c:") && !rcallee.is_empty() {
                    rec.flows.push(FlowRecord {
                        line: fc.line,
                        dst: "ok".to_string(),
                        srcs: vec![rnode.clone()],
                        what: format!("ok:{rcallee}"),
                    });
                }
            }
            self.push_value(node.clone());
            if self.fcalls.is_empty() {
                self.last_call = Some((node.clone(), fc.callee.clone()));
            }
            self.last_close = Some((i, node, fc.callee));
        }
    }

    /// Seals the statement at its `;`: emits `assign`/`ret` flows and
    /// resets per-statement state. Returns the statement's sources for
    /// the caller's `let` sealing.
    fn end_stmt(&mut self, line: u32, rec: &mut FnRecord) -> Vec<String> {
        let srcs = std::mem::take(&mut self.stmt_srcs);
        if let Some(dst) = self.assign_dst.take() {
            if !srcs.is_empty() {
                rec.flows.push(FlowRecord {
                    line,
                    dst: format!("v:{dst}"),
                    srcs: srcs.clone(),
                    what: "assign".to_string(),
                });
            }
        }
        if self.is_return && !srcs.is_empty() {
            rec.flows.push(FlowRecord {
                line,
                dst: "r".to_string(),
                srcs: srcs.clone(),
                what: "ret".to_string(),
            });
        }
        self.is_return = false;
        srcs
    }
}

/// Whether the ident at `i` is a plain value use worth a dataflow
/// source: not a keyword, call, macro, path segment, field/method name,
/// struct-literal head, lifetime, assignment target, or `_`.
fn value_ident_ok(toks: &[Token], i: usize, name: &str) -> bool {
    if name == "_" || name == "self" || KEYWORDS.contains(&name) {
        return false;
    }
    match punct_at(toks, i + 1) {
        Some('(') | Some('!') | Some('{') | Some(':') => return false,
        Some('=') if plain_assign(toks, i + 1) => return false,
        _ => {}
    }
    if let Some(p) = i.checked_sub(1).and_then(|p| punct_at(toks, p)) {
        if p == '.' || p == ':' || p == '\'' {
            return false;
        }
    }
    true
}

/// Collects `v:` nodes for every plain value ident in `[from, to)`.
fn collect_value_idents(toks: &[Token], from: usize, to: usize) -> Vec<String> {
    let mut out = Vec::new();
    for j in from..to {
        if let Some(name) = ident_at(toks, j) {
            if value_ident_ok(toks, j, name) {
                let node = format!("v:{name}");
                if !out.contains(&node) {
                    out.push(node);
                }
            }
        }
    }
    out
}

/// Whether the ident at `i` is the root of a receiver chain that ends
/// in a method call (`x.f.min(..)`): such roots are captured as the
/// call's receiver, not as plain statement values.
fn chain_root_of_call(toks: &[Token], i: usize) -> bool {
    if punct_at(toks, i + 1) != Some('.') {
        return false;
    }
    let mut j = i;
    while punct_at(toks, j + 1) == Some('.') && ident_at(toks, j + 2).is_some() {
        j += 2;
    }
    punct_at(toks, j + 1) == Some('(') || turbofish_paren(toks, j).is_some()
}

/// Pre-scans a body for comparison and multiplication facts, skipping
/// nested fns (they get their own scan).
fn scan_facts(raw: &RawFn, ctx: &FileCtx<'_>, rec: &mut FnRecord) {
    let Some((start, end)) = raw.body else { return };
    let toks = ctx.toks;
    let mut j = start;
    while j < end {
        if ident_at(toks, j) == Some("fn") {
            if let Some(&resume) = ctx.skip_fns.get(&j) {
                j = resume;
                continue;
            }
        }
        match punct_at(toks, j) {
            Some(c @ ('<' | '>')) => {
                // skip `<<`/`>>`/`->`/`=>` and turbofish `::<`
                let prev = j.checked_sub(1).and_then(|p| punct_at(toks, p));
                let operator = prev != Some(c)
                    && prev != Some('-')
                    && prev != Some('=')
                    && prev != Some(':')
                    && punct_at(toks, j + 1) != Some(c);
                let right_at = if punct_at(toks, j + 1) == Some('=') {
                    j + 2
                } else {
                    j + 1
                };
                if operator {
                    let lhs = j.checked_sub(1).and_then(|p| ident_at(toks, p));
                    let rhs = ident_at(toks, right_at);
                    if let (Some(a), Some(b)) = (lhs, rhs) {
                        if !KEYWORDS.contains(&a) && !KEYWORDS.contains(&b) {
                            let line = toks[j].line;
                            rec.flows.push(FlowRecord {
                                line,
                                dst: format!("v:{a}"),
                                srcs: Vec::new(),
                                what: format!("cmp:{b}"),
                            });
                            rec.flows.push(FlowRecord {
                                line,
                                dst: format!("v:{b}"),
                                srcs: Vec::new(),
                                what: format!("cmp:{a}"),
                            });
                        }
                    }
                }
            }
            Some('*') => {
                // `a * b` with ident operands; `*x` derefs have no
                // left ident and fall out naturally
                let lhs = j.checked_sub(1).and_then(|p| ident_at(toks, p));
                let rhs = ident_at(toks, j + 1);
                if let (Some(a), Some(b)) = (lhs, rhs) {
                    if !KEYWORDS.contains(&a) && !KEYWORDS.contains(&b) {
                        rec.flows.push(FlowRecord {
                            line: toks[j].line,
                            dst: "arith".to_string(),
                            srcs: vec![format!("v:{a}"), format!("v:{b}")],
                            what: "arith:*".to_string(),
                        });
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
}

/// Per-file context shared by all body analyses.
struct FileCtx<'a> {
    toks: &'a [Token],
    lines: &'a [StrippedLine],
    types: &'a BTreeMap<String, RawType>,
    /// (owner, name) → (returns_guard, direct lock ids)
    sigs: BTreeMap<(Option<String>, String), (bool, Vec<String>)>,
    /// header token index → token index to resume after the nested fn
    skip_fns: BTreeMap<usize, usize>,
}

impl FileCtx<'_> {
    fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.code.as_str())
            .unwrap_or("")
    }
}

/// Resolves the type head of a receiver chain (`["self", "inner"]`).
fn chain_type(
    chain: &[String],
    owner: Option<&str>,
    env: &BTreeMap<String, String>,
    types: &BTreeMap<String, RawType>,
) -> Option<String> {
    let mut ty: Option<String> = None;
    for (k, part) in chain.iter().enumerate() {
        if k == 0 {
            ty = if part == "self" {
                owner.map(str::to_string)
            } else {
                env.get(part).cloned()
            };
        } else {
            let t = ty.as_deref()?;
            ty = types.get(t).and_then(|rt| rt.fields.get(part)).cloned();
        }
        ty.as_ref()?;
        let _ = k;
    }
    ty
}

/// Lock id for a `.lock()` receiver chain: `Owner::field` when the
/// parent type resolves, `fn-qualifier::local` for a typed local mutex,
/// `None` (no guard) otherwise.
fn lock_id(
    chain: &[String],
    fn_display: &str,
    owner: Option<&str>,
    env: &BTreeMap<String, String>,
    types: &BTreeMap<String, RawType>,
) -> Option<String> {
    match chain.len() {
        0 => None,
        1 => {
            let v = &chain[0];
            if v == "self" {
                return None; // `self.lock()` is a helper call, not a field
            }
            let head = env.get(v)?;
            if head == "Mutex" {
                Some(format!("{fn_display}::{v}"))
            } else {
                None
            }
        }
        _ => {
            let parent = chain_type(&chain[..chain.len() - 1], owner, env, types)?;
            Some(format!("{parent}::{}", chain.last()?))
        }
    }
}

/// Walks back from the `.` before a method name, collecting the
/// `ident(.ident)*` receiver chain. Returns `None` when the receiver is
/// an arbitrary expression (`foo().lock()`).
fn recv_chain(toks: &[Token], dot_idx: usize) -> Option<Vec<String>> {
    let mut chain = Vec::new();
    let mut j = dot_idx; // points at the `.`
    loop {
        let name = ident_at(toks, j.checked_sub(1)?)?;
        chain.push(name.to_string());
        if punct_at(toks, j.checked_sub(2).unwrap_or(usize::MAX)) == Some('.') {
            j -= 2;
        } else {
            break;
        }
    }
    // a chain hanging off `)` / `]` is an expression receiver
    if j >= 2 {
        if let Some(c) = punct_at(toks, j - 2) {
            if c == ')' || c == ']' {
                return None;
            }
        }
    }
    chain.reverse();
    Some(chain)
}

/// Infers the type head of a `let` RHS from its leading tokens:
/// constructor paths (`BoundedQueue::new(`), wrapper constructors
/// (`Arc::new(inner)`), and `.clone()` of a typed local.
fn infer_rhs_type(
    toks: &[Token],
    i: usize,
    end: usize,
    owner: Option<&str>,
    env: &BTreeMap<String, String>,
) -> Option<String> {
    let mut i = i;
    while i < end && punct_at(toks, i) == Some('&') {
        i += 1;
    }
    let first = ident_at(toks, i)?;
    if punct_at(toks, i + 1) == Some(':') && punct_at(toks, i + 2) == Some(':') {
        // `T::method(...)` — maybe through a path prefix
        let mut head = first.to_string();
        let mut j = i;
        while punct_at(toks, j + 1) == Some(':')
            && punct_at(toks, j + 2) == Some(':')
            && ident_at(toks, j + 3).is_some()
        {
            j += 3;
            let seg = ident_at(toks, j).unwrap_or_default().to_string();
            if punct_at(toks, j + 1) == Some('(')
                || (punct_at(toks, j + 1) == Some(':') && punct_at(toks, j + 2) == Some(':'))
            {
                // `head` so far is the type; `seg` the method — stop at a call
                if punct_at(toks, j + 1) == Some('(') {
                    if WRAPPERS.contains(&head.as_str()) {
                        // Arc::new(inner) / Arc::clone(&x) — look inside
                        if seg == "clone" {
                            let mut k = j + 2;
                            while k < end && punct_at(toks, k) == Some('&') {
                                k += 1;
                            }
                            let inner = ident_at(toks, k)?;
                            return env.get(inner).cloned();
                        }
                        return infer_rhs_type(toks, j + 2, end, owner, env);
                    }
                    if head == "Self" {
                        return owner.map(str::to_string);
                    }
                    if head.chars().next().is_some_and(char::is_uppercase) {
                        return Some(head);
                    }
                    return None;
                }
                head = seg.clone();
            } else {
                head = seg.clone();
            }
        }
        None
    } else if punct_at(toks, i + 1) == Some('.') {
        // `x.clone()` keeps x's type
        if ident_at(toks, i + 2) == Some("clone") && punct_at(toks, i + 3) == Some('(') {
            return env.get(first).cloned();
        }
        None
    } else {
        None
    }
}

fn is_float_zero(num: &str) -> bool {
    num.starts_with("0.") || num == "0f32" || num == "0f64"
}

/// Whether the `=` punct at `i` is a plain assignment (not `==`, `=>`,
/// `<=`, `+=`, ...).
fn plain_assign(toks: &[Token], i: usize) -> bool {
    if punct_at(toks, i) != Some('=') {
        return false;
    }
    if punct_at(toks, i + 1) == Some('=') {
        return false;
    }
    if let Some(prev) = i.checked_sub(1).and_then(|p| punct_at(toks, p)) {
        if "=!<>+-*/%&|^".contains(prev) {
            return false;
        }
    }
    true
}

#[allow(clippy::too_many_lines)]
fn analyze_body(raw: &RawFn, ctx: &FileCtx<'_>, rec: &mut FnRecord) {
    let Some((start, end)) = raw.body else { return };
    let toks = ctx.toks;
    let owner = raw.owner.as_deref();
    let fn_display = rec.display();
    let mut env: BTreeMap<String, String> = raw.params.iter().cloned().collect();
    let mut guards: Vec<Guard> = Vec::new();
    let mut lets: Vec<LetCtx> = Vec::new();
    let mut open_calls: Vec<OpenCall> = Vec::new();
    let mut pending_rebind: Option<String> = None;
    let mut last_clamp_close: Option<usize> = None;
    let mut depth = 0i32;
    let mut bdepth = 0i32; // paren/bracket depth
    let mut fp = FlowPass::default();
    scan_facts(raw, ctx, rec);

    let live_ids = |guards: &[Guard]| -> Vec<String> {
        let mut ids: Vec<String> = guards
            .iter()
            .filter(|g| g.alive)
            .flat_map(|g| g.ids.iter().cloned())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    };

    let mut i = start;
    while i < end {
        // nested fn: skip its tokens; it is analyzed on its own
        if ident_at(toks, i) == Some("fn") {
            if let Some(&resume) = ctx.skip_fns.get(&i) {
                i = resume;
                continue;
            }
        }
        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                // an `if let` / `while let` binding becomes live inside
                // the block it guards
                if let Some(l) = lets.last() {
                    if l.cond && l.depth == depth - 1 {
                        for &g in &l.guards {
                            guards[g].bind_depth = Some(depth);
                        }
                        // g4check: allow(unwrap-in-lib): last() matched two lines up
                        let l = lets.pop().expect("just matched");
                        // the condition's sources flow into the binding
                        if let Some(n) = l.name.as_deref().filter(|n| *n != "_") {
                            let srcs = std::mem::take(&mut fp.stmt_srcs);
                            if !srcs.is_empty() {
                                rec.flows.push(FlowRecord {
                                    line: l.line,
                                    dst: format!("v:{n}"),
                                    srcs,
                                    what: "let".to_string(),
                                });
                            }
                        }
                    }
                }
                // a block boundary ends the condition/header segment —
                // unless a `let` RHS is mid-flight (`let h = H { .. }`)
                let in_let_rhs = lets.last().is_some_and(|l| l.rhs_started);
                if fp.fcalls.is_empty() && !in_let_rhs {
                    fp.stmt_srcs.clear();
                }
                i += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                for g in guards.iter_mut() {
                    if g.alive && g.bind_depth.is_some_and(|d| d > depth) {
                        g.alive = false;
                    }
                }
                i += 1;
            }
            Tok::Punct('(') | Tok::Punct('[') => {
                bdepth += 1;
                i += 1;
            }
            Tok::Punct(')') | Tok::Punct(']') => {
                bdepth -= 1;
                fp.close_call(i, rec);
                // close any call whose args end here
                while let Some(oc) = open_calls.pop_if(|oc| oc.close == i) {
                    let consumed_ids: Vec<String> = oc
                        .consumed
                        .iter()
                        .flat_map(|&g| guards[g].ids.clone())
                        .collect();
                    let held: Vec<String> = oc
                        .held_at_open
                        .iter()
                        .filter(|id| !consumed_ids.contains(id))
                        .cloned()
                        .collect();
                    let consumed_any = !oc.consumed.is_empty();
                    // a consuming guard-returning call re-arms a rebound
                    // guard (condvar handoff: `state = self.wait(.., state)`)
                    let mut revived = false;
                    if consumed_any {
                        if let Some(name) = pending_rebind.as_deref() {
                            let returns_guard = ctx
                                .sigs
                                .get(&(owner.map(str::to_string), oc.callee.clone()))
                                .map(|(rg, _)| *rg)
                                .unwrap_or(false)
                                || rec
                                    .calls
                                    .get(oc.rec)
                                    .is_some_and(|c| !c.acquired.is_empty());
                            if returns_guard {
                                for &g in &oc.consumed {
                                    if guards[g].name.as_deref() == Some(name) {
                                        revived = true;
                                    }
                                }
                            }
                        }
                    }
                    for &g in &oc.consumed {
                        if revived && guards[g].name.as_deref() == pending_rebind.as_deref() {
                            continue; // stays alive with its old ids
                        }
                        guards[g].alive = false;
                    }
                    if oc.callee == "clamp" {
                        last_clamp_close = Some(i);
                    }
                    if let Some(c) = rec.calls.get_mut(oc.rec) {
                        c.held = held;
                        c.consumed_guard = consumed_any;
                    }
                }
                i += 1;
            }
            Tok::Punct(';') if bdepth == 0 => {
                // end of statement: temp guards die, let bindings seal
                let flow_srcs = fp.end_stmt(line, rec);
                while let Some(l) = lets.pop_if(|l| l.depth == depth) {
                    match l.name.as_deref() {
                        Some("_") => {
                            // `let _ = fallible(..);` — record the
                            // discarded call for the error-swallow rule
                            if let Some((node, callee)) = &fp.last_call {
                                rec.flows.push(FlowRecord {
                                    line: l.line,
                                    dst: "_".to_string(),
                                    srcs: vec![node.clone()],
                                    what: format!("discard:{callee}"),
                                });
                            }
                        }
                        Some(n) if !flow_srcs.is_empty() => {
                            rec.flows.push(FlowRecord {
                                line: l.line,
                                dst: format!("v:{n}"),
                                srcs: flow_srcs.clone(),
                                what: "let".to_string(),
                            });
                        }
                        _ => {}
                    }
                    seal_let(&l, toks, ctx, owner, &mut env, &mut guards);
                }
                fp.last_call = None;
                for g in guards.iter_mut() {
                    if g.alive && g.bind_depth.is_none() {
                        g.alive = false;
                    }
                }
                pending_rebind = None;
                i += 1;
            }
            Tok::Punct(',') => {
                fp.comma(bdepth);
                i += 1;
            }
            Tok::Ident(kw) if kw == "let" => {
                let cond = i
                    .checked_sub(1)
                    .and_then(|p| ident_at(toks, p))
                    .is_some_and(|p| p == "if" || p == "while");
                let (name, mut_count, after) = parse_let_pattern(toks, i + 1);
                let ty = if punct_at(toks, after) == Some(':') {
                    // annotation runs to the `=`
                    let mut j = after + 1;
                    let mut d = 0i32;
                    while j < end {
                        match punct_at(toks, j) {
                            Some('<') | Some('(') | Some('[') => d += 1,
                            Some('>') | Some(')') | Some(']') => d -= 1,
                            Some('=') if d <= 0 && plain_assign(toks, j) => break,
                            Some(';') if d <= 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    Some((after + 1, j))
                } else {
                    None
                };
                lets.push(LetCtx {
                    name,
                    depth,
                    cond,
                    rhs_started: false,
                    mut_count,
                    guards: Vec::new(),
                    line,
                    ty,
                    accum_emitted: false,
                });
                i += 1;
            }
            Tok::Punct('=') if plain_assign(toks, i) => {
                if let Some(l) = lets.last_mut() {
                    if !l.rhs_started {
                        l.rhs_started = true;
                        // split-accumulator: `let (mut a, mut b) = (0.0, 0.0)`
                        // or `let mut acc = [0.0f32; N]` (not `vec![..]`)
                        let rhs_zero = rhs_float_zero(toks, i + 1, end);
                        if !l.accum_emitted
                            && rhs_zero
                            && (l.mut_count >= 2 || rhs_is_array(toks, i + 1))
                            && l.mut_count >= 1
                        {
                            rec.accums.push(AccumRecord { line: l.line });
                            l.accum_emitted = true;
                        }
                        i += 1;
                        continue;
                    }
                }
                // plain reassignment: `state = self.wait(...)`
                if let Some(name) = i
                    .checked_sub(1)
                    .and_then(|p| ident_at(toks, p))
                    .map(str::to_string)
                {
                    if bdepth == 0 && fp.fcalls.is_empty() {
                        fp.assign_dst = Some(name.clone());
                    }
                    if guards.iter().any(|g| g.name.as_deref() == Some(&name)) {
                        pending_rebind = Some(name);
                    }
                }
                i += 1;
            }
            Tok::Ident(name) => {
                let next = punct_at(toks, i + 1);
                let is_macro = next == Some('!')
                    && matches!(punct_at(toks, i + 2), Some('(') | Some('[') | Some('{'));
                if is_macro {
                    if name == "vec" && punct_at(toks, i + 2) == Some('[') {
                        // `vec![x; n]`: the repeat count is an
                        // allocation-size fact for the taint rules
                        let close = matching_close(toks, i + 2);
                        let mut semi = None;
                        let mut d = 0i32;
                        let mut j = i + 3;
                        while j < close {
                            match punct_at(toks, j) {
                                Some('(') | Some('[') | Some('{') => d += 1,
                                Some(')') | Some(']') | Some('}') => d -= 1,
                                Some(';') if d <= 0 => {
                                    semi = Some(j);
                                    break;
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        if let Some(s) = semi {
                            let srcs = collect_value_idents(toks, s + 1, close);
                            if !srcs.is_empty() {
                                rec.flows.push(FlowRecord {
                                    line,
                                    dst: "alloc".to_string(),
                                    srcs,
                                    what: "alloc:vec!".to_string(),
                                });
                            }
                        }
                    }
                    if PANIC_MACROS.contains(&name.as_str()) {
                        rec.panics.push(PanicRecord {
                            line,
                            what: format!("{name}!"),
                        });
                    } else if IO_MACROS.contains(&name.as_str()) {
                        rec.calls.push(CallRecord {
                            callee: format!("{name}!"),
                            recv: None,
                            method: false,
                            line,
                            held: live_ids(&guards),
                            acquired: Vec::new(),
                            consumed_guard: false,
                        });
                    }
                    i += 2;
                    continue;
                }
                let paren = if next == Some('(') {
                    Some(i + 1)
                } else {
                    turbofish_paren(toks, i)
                };
                if let (Some(paren), false) = (paren, KEYWORDS.contains(&name.as_str())) {
                    let calls_before = rec.calls.len();
                    handle_call(
                        HandleCall {
                            name,
                            i,
                            paren,
                            line,
                            owner,
                            fn_display: &fn_display,
                            raw,
                        },
                        ctx,
                        &env,
                        &mut guards,
                        &mut lets,
                        &mut open_calls,
                        &pending_rebind,
                        rec,
                        &live_ids,
                    );
                    // `.unwrap()`/`.expect(` push no CallRecord and get
                    // a transparent frame instead
                    let rec_idx = (rec.calls.len() > calls_before).then_some(calls_before);
                    fp.open_call(toks, i, paren, name, rec_idx, line, bdepth);
                    i += 1;
                    continue;
                }
                if name == "as" {
                    // narrowing cast?
                    if let Some(ty) = ident_at(toks, i + 1) {
                        if NARROW_TYPES.contains(&ty) {
                            let safe = i >= 1
                                && punct_at(toks, i - 1) == Some(')')
                                && last_clamp_close == Some(i - 1);
                            rec.casts.push(CastRecord {
                                line,
                                ty: ty.to_string(),
                                safe,
                            });
                        }
                    }
                    i += 1;
                    continue;
                }
                // --- dataflow value uses ---------------------------------
                if name == "return" {
                    fp.stmt_srcs.clear();
                    fp.is_return = true;
                } else if name == "for" {
                    // `for pat in expr {`: the binding flows from the
                    // iterated expression's value idents
                    let (bind, _, _) = parse_let_pattern(toks, i + 1);
                    if let Some(b) = bind.filter(|b| b != "_") {
                        let mut j = i + 1;
                        while j < end && ident_at(toks, j) != Some("in") {
                            j += 1;
                        }
                        let mut stop = j;
                        let mut d = 0i32;
                        while stop < end {
                            match punct_at(toks, stop) {
                                Some('(') | Some('[') => d += 1,
                                Some(')') | Some(']') => d -= 1,
                                Some('{') if d <= 0 => break,
                                _ => {}
                            }
                            stop += 1;
                        }
                        let mut srcs = collect_value_idents(toks, j + 1, stop);
                        // a bare range ident sits right before the loop
                        // `{`, which value_ident_ok reads as a struct
                        // literal; struct literals are not legal in a
                        // for-range, so admit it (`for line in lines {`)
                        if let Some(n) = stop.checked_sub(1).and_then(|p| ident_at(toks, p)) {
                            let glued = stop
                                .checked_sub(2)
                                .and_then(|p| punct_at(toks, p))
                                .is_some_and(|c| c == '.' || c == ':' || c == '\'');
                            if !KEYWORDS.contains(&n) && n != "_" && n != "self" && !glued {
                                let node = format!("v:{n}");
                                if !srcs.contains(&node) {
                                    srcs.push(node);
                                }
                            }
                        }
                        if !srcs.is_empty() {
                            rec.flows.push(FlowRecord {
                                line,
                                dst: format!("v:{b}"),
                                srcs,
                                what: "iter".to_string(),
                            });
                        }
                    }
                } else if !KEYWORDS.contains(&name.as_str())
                    && !chain_root_of_call(toks, i)
                    && value_ident_ok(toks, i, name)
                {
                    fp.push_value(format!("v:{name}"));
                }
                // a bare live-guard name as a call argument = a move into
                // the call (consumption), unless borrowed
                if let Some(oc_idx) = open_calls.len().checked_sub(1) {
                    let borrowed = i
                        .checked_sub(1)
                        .and_then(|p| punct_at(toks, p))
                        .is_some_and(|c| c == '&');
                    let bare = matches!(punct_at(toks, i + 1), Some(',') | Some(')'));
                    if !borrowed && bare {
                        if let Some(gi) = guards
                            .iter()
                            .position(|g| g.alive && g.name.as_deref() == Some(name.as_str()))
                        {
                            open_calls[oc_idx].consumed.push(gi);
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    // the body's tail expression (sources since the last `;`) feeds the
    // return value
    if !fp.stmt_srcs.is_empty() {
        let tail_line = toks
            .get(end.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(raw.line);
        rec.flows.push(FlowRecord {
            line: tail_line,
            dst: "r".to_string(),
            srcs: std::mem::take(&mut fp.stmt_srcs),
            what: "ret".to_string(),
        });
    }
    let _ = num_at; // silence potential unused in future refactors
}

/// Whether the RHS starting at `i` contains a float-zero literal among
/// its first few tokens (tuple of zeros or `[0.0; N]`).
fn rhs_float_zero(toks: &[Token], i: usize, end: usize) -> bool {
    let mut j = i;
    let stop = (i + 16).min(end);
    while j < stop {
        if let Some(n) = num_at(toks, j) {
            if is_float_zero(n) {
                return true;
            }
        }
        if punct_at(toks, j) == Some(';') {
            break;
        }
        j += 1;
    }
    false
}

/// Whether the RHS starting at `i` is an array literal (not `vec![..]`).
fn rhs_is_array(toks: &[Token], i: usize) -> bool {
    punct_at(toks, i) == Some('[')
}

/// Extracts the binding name from a `let` pattern: `mut x`, `Some(x)`,
/// `Ok(mut g)`. Returns (name, count of `mut` in the pattern, index
/// after the pattern's first name-ish run).
fn parse_let_pattern(toks: &[Token], mut i: usize) -> (Option<String>, usize, usize) {
    let mut mut_count = 0usize;
    // count every `mut` up to the `=`/`:` at depth 0 (for tuple patterns)
    let mut j = i;
    let mut d = 0i32;
    while j < toks.len() {
        match punct_at(toks, j) {
            Some('(') | Some('[') => d += 1,
            Some(')') | Some(']') => d -= 1,
            Some('=') if d <= 0 && plain_assign(toks, j) => break,
            Some(':') if d <= 0 && punct_at(toks, j + 1) != Some(':') => break,
            Some(';') | Some('{') if d <= 0 => break,
            _ => {}
        }
        if ident_at(toks, j) == Some("mut") {
            mut_count += 1;
        }
        j += 1;
    }
    if ident_at(toks, i) == Some("mut") {
        i += 1;
    }
    let name = match ident_at(toks, i) {
        Some(n) if punct_at(toks, i + 1) == Some('(') => {
            // tuple-struct pattern `Some(x)` / `Ok(mut g)`
            let mut k = i + 2;
            if ident_at(toks, k) == Some("mut") {
                k += 1;
            }
            let inner = ident_at(toks, k).map(str::to_string);
            let _ = n;
            return (inner, mut_count, j);
        }
        Some(n) => Some(n.to_string()),
        None => None,
    };
    (name, mut_count, i + 1)
}

/// Seals a completed plain `let`: records the local's inferred type.
fn seal_let(
    l: &LetCtx,
    toks: &[Token],
    ctx: &FileCtx<'_>,
    owner: Option<&str>,
    env: &mut BTreeMap<String, String>,
    guards: &mut [Guard],
) {
    let Some(name) = &l.name else { return };
    // explicit annotation wins
    if let Some((s, e)) = l.ty {
        if let Some(head) = type_head(ctx.toks, s, e) {
            env.insert(name.clone(), head);
            bindable(guards, l);
            return;
        }
    }
    // constructor inference from the RHS (tokens after the `=` were
    // already walked; re-derive from the annotation-free header)
    if let Some(eq) = find_assign(toks, l) {
        if let Some(head) = infer_rhs_type(toks, eq + 1, toks.len(), owner, env) {
            env.insert(name.clone(), head);
        }
    }
    bindable(guards, l);
}

fn bindable(guards: &mut [Guard], l: &LetCtx) {
    for &g in &l.guards {
        if let Some(gd) = guards.get_mut(g) {
            gd.bind_depth = Some(l.depth);
        }
    }
}

/// Finds the `=` of a let statement by scanning forward from its line.
fn find_assign(toks: &[Token], l: &LetCtx) -> Option<usize> {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].line == l.line && ident_at(toks, i) == Some("let") {
            let mut j = i + 1;
            let mut d = 0i32;
            while j < toks.len() {
                match punct_at(toks, j) {
                    Some('(') | Some('[') | Some('<') => d += 1,
                    Some(')') | Some(']') | Some('>') => d -= 1,
                    Some('=') if d <= 0 && plain_assign(toks, j) => return Some(j),
                    Some(';') if d <= 0 => return None,
                    _ => {}
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Finds the `(` of a turbofish call: ident at `i` followed by
/// `::<…>(`, as in `sum::<f32>()`. Returns the paren's token index.
fn turbofish_paren(toks: &[Token], i: usize) -> Option<usize> {
    if punct_at(toks, i + 1) != Some(':')
        || punct_at(toks, i + 2) != Some(':')
        || punct_at(toks, i + 3) != Some('<')
    {
        return None;
    }
    let mut depth = 0i32;
    let mut k = i + 3;
    while k < toks.len() && k < i + 24 {
        match punct_at(toks, k) {
            Some('<') => depth += 1,
            Some('>') => {
                depth -= 1;
                if depth == 0 {
                    return (punct_at(toks, k + 1) == Some('(')).then_some(k + 1);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

struct HandleCall<'a> {
    name: &'a str,
    i: usize,
    /// Token index of the call's `(` — `i + 1` except for turbofish calls.
    paren: usize,
    line: u32,
    owner: Option<&'a str>,
    fn_display: &'a str,
    raw: &'a RawFn,
}

/// Records one `name(` call site: resolves its receiver, detects guard
/// acquisition, and opens a consumption-tracking frame.
#[allow(clippy::too_many_arguments)]
fn handle_call(
    hc: HandleCall<'_>,
    ctx: &FileCtx<'_>,
    env: &BTreeMap<String, String>,
    guards: &mut Vec<Guard>,
    lets: &mut [LetCtx],
    open_calls: &mut Vec<OpenCall>,
    pending_rebind: &Option<String>,
    rec: &mut FnRecord,
    live_ids: &dyn Fn(&[Guard]) -> Vec<String>,
) {
    let HandleCall {
        name,
        i,
        paren,
        line,
        owner,
        fn_display,
        raw,
    } = hc;
    let toks = ctx.toks;
    let prev = i.checked_sub(1).and_then(|p| punct_at(toks, p));
    let prev_is_dot = prev == Some('.');
    let prev_is_path = prev == Some(':')
        && i.checked_sub(2)
            .and_then(|p| punct_at(toks, p))
            .is_some_and(|c| c == ':');

    // `.unwrap()` / `.expect(` are panic sites, not calls worth edges
    if prev_is_dot && (name == "unwrap" || name == "expect") {
        rec.panics.push(PanicRecord {
            line,
            what: format!(".{name}("),
        });
        return;
    }

    let mut recv: Option<String> = None;
    let mut method = false;
    let mut acquired: Vec<String> = Vec::new();

    if prev_is_dot {
        method = true;
        let chain = recv_chain(toks, i - 1);
        if let Some(chain) = &chain {
            recv = chain_type(chain, owner, env, ctx.types);
            if LOCK_METHODS.contains(&name) {
                if let Some(id) = lock_id(chain, fn_display, owner, env, ctx.types) {
                    acquired.push(id);
                }
            }
        }
    } else if prev_is_path {
        // `Type::method(` / `module::func(`
        if let Some(seg) = i.checked_sub(3).and_then(|p| ident_at(toks, p)) {
            if seg == "Self" {
                recv = owner.map(str::to_string);
            } else if seg.chars().next().is_some_and(char::is_uppercase) {
                recv = Some(seg.to_string());
            }
        }
    }

    // same-file guard-returning helper? (`self.lock()`, `self.wait(..)`)
    if acquired.is_empty() {
        let owner_key = if method {
            // only trust helper resolution for `self.helper()` or a
            // resolved receiver type
            if recv.is_some() {
                recv.clone()
            } else if recv_chain(toks, i - 1).is_some_and(|c| c == ["self"]) {
                owner.map(str::to_string)
            } else {
                None
            }
        } else {
            recv.clone()
        };
        let key = (owner_key, name.to_string());
        if let Some((returns_guard, locks)) = ctx.sigs.get(&key) {
            if *returns_guard {
                acquired = locks.clone();
            }
        } else if !method && recv.is_none() {
            // free fn in the same file
            if let Some((true, locks)) = ctx.sigs.get(&(None, name.to_string())) {
                acquired = locks.clone();
            }
        }
    }

    let held = live_ids(guards);
    let rec_idx = rec.calls.len();
    rec.calls.push(CallRecord {
        callee: name.to_string(),
        recv,
        method,
        line,
        held: held.clone(),
        acquired: acquired.clone(),
        consumed_guard: false,
    });

    // float reduction?
    if (name == "sum" || name == "product" || name == "fold") && method {
        // turbofish hint: `.sum::<f32>()` has f32/f64 between name and `(`
        let turbofish_float =
            (i + 1..paren).any(|k| matches!(ident_at(toks, k), Some("f32") | Some("f64")));
        let mut hinted =
            turbofish_float || raw.sig_float || line_mentions_float(ctx.line_text(line));
        if name == "fold" {
            // float first arg: `fold(0.0f32, ..)`
            let mut k = paren + 1;
            let mut seen_float = false;
            while k < toks.len() && punct_at(toks, k) != Some(',') {
                if let Some(n) = num_at(toks, k) {
                    if n.contains('.') || n.ends_with("f32") || n.ends_with("f64") {
                        seen_float = true;
                    }
                }
                if matches!(ident_at(toks, k), Some("f32") | Some("f64")) {
                    seen_float = true;
                }
                k += 1;
                if k > paren + 7 {
                    break;
                }
            }
            if !seen_float {
                return finish_call(open_calls, toks, paren, rec_idx, name, held);
            }
            hinted = true;
        }
        rec.reductions.push(ReductionRecord {
            line,
            what: name.to_string(),
            hinted,
        });
    }

    // guard creation
    if !acquired.is_empty() {
        let bind_to = lets.last_mut().filter(|l| l.rhs_started || l.cond);
        match bind_to {
            Some(l) => {
                let gi = guards.len();
                guards.push(Guard {
                    name: l.name.clone(),
                    ids: acquired.clone(),
                    bind_depth: Some(l.depth),
                    alive: true,
                });
                l.guards.push(gi);
            }
            None => {
                // maybe a rebind (`state = self.wait(..)`), else a temp
                let name = pending_rebind.clone();
                let revive = name.as_ref().and_then(|n| {
                    guards
                        .iter()
                        .position(|g| g.name.as_deref() == Some(n.as_str()))
                });
                match revive {
                    Some(gi) => {
                        let mut ids = guards[gi].ids.clone();
                        for id in &acquired {
                            if !ids.contains(id) {
                                ids.push(id.clone());
                            }
                        }
                        guards[gi].ids = ids;
                        guards[gi].alive = true;
                    }
                    None => guards.push(Guard {
                        name,
                        ids: acquired.clone(),
                        bind_depth: None,
                        alive: true,
                    }),
                }
            }
        }
    }

    finish_call(open_calls, toks, paren, rec_idx, name, held);
}

fn finish_call(
    open_calls: &mut Vec<OpenCall>,
    toks: &[Token],
    paren: usize,
    rec_idx: usize,
    name: &str,
    held: Vec<String>,
) {
    let close = matching_close(toks, paren);
    open_calls.push(OpenCall {
        rec: rec_idx,
        close,
        callee: name.to_string(),
        held_at_open: held,
        consumed: Vec::new(),
    });
}

fn line_mentions_float(code: &str) -> bool {
    code.contains("f32") || code.contains("f64")
}

// --- per-file driver ----------------------------------------------------

/// Indexes one source file. The result depends only on `rel` (for its
/// file-kind classification) and `text`.
pub fn index_file(rel: &Path, text: &str) -> FileIndex {
    let kind = classify(rel);
    let file_is_test = kind == Some(FileKind::TestFile);
    let lines = strip_source(text);
    let in_test = test_regions(&lines);
    let toks = tokenize(&lines);
    let st = structural_pass(&toks, &lines, &in_test, file_is_test);

    // same-file signature table: (owner, name) → (returns_guard,
    // direct lock ids), for resolving guard-returning helpers
    let mut sigs: BTreeMap<(Option<String>, String), (bool, Vec<String>)> = BTreeMap::new();
    for f in &st.fns {
        let mut locks = Vec::new();
        if let Some((s, e)) = f.body {
            let env: BTreeMap<String, String> = f.params.iter().cloned().collect();
            let display = match &f.owner {
                Some(o) => format!("{o}::{}", f.name),
                None => f.name.clone(),
            };
            let mut i = s;
            while i < e {
                if ident_at(&toks, i) == Some("lock")
                    && punct_at(&toks, i + 1) == Some('(')
                    && i >= 1
                    && punct_at(&toks, i - 1) == Some('.')
                {
                    if let Some(chain) = recv_chain(&toks, i - 1) {
                        if let Some(id) =
                            lock_id(&chain, &display, f.owner.as_deref(), &env, &st.types)
                        {
                            if !locks.contains(&id) {
                                locks.push(id);
                            }
                        }
                    }
                }
                i += 1;
            }
        }
        sigs.insert((f.owner.clone(), f.name.clone()), (f.returns_guard, locks));
    }

    let mut skip_fns = BTreeMap::new();
    for f in &st.fns {
        let resume = match f.body {
            Some((_, close)) => close + 1,
            None => f.header_tok + 1,
        };
        skip_fns.insert(f.header_tok, resume);
    }

    let ctx = FileCtx {
        toks: &toks,
        lines: &lines,
        types: &st.types,
        sigs,
        skip_fns,
    };

    let mut fns = Vec::new();
    for f in &st.fns {
        let mut rec = FnRecord {
            name: f.name.clone(),
            owner: f.owner.clone(),
            module: f.module.clone(),
            line: f.line,
            is_test: f.attr_test,
            doc_panics: f.doc_panics,
            returns_guard: f.returns_guard,
            sig_float: f.sig_float,
            params: f.param_names.clone(),
            calls: Vec::new(),
            casts: Vec::new(),
            reductions: Vec::new(),
            accums: Vec::new(),
            panics: Vec::new(),
            flows: Vec::new(),
        };
        analyze_body(f, &ctx, &mut rec);
        fns.push(rec);
    }

    // allow annotations (scratch violation list: the lint pass owns
    // reporting malformed ones)
    let mut scratch = Vec::new();
    let allows_map = parse_allows(&lines, rel, &mut scratch);
    let mut allows = Vec::new();
    for (line_idx, rules) in &allows_map {
        for r in rules {
            allows.push(((line_idx + 1) as u32, r.name().to_string()));
        }
    }
    allows.sort();
    allows.dedup();

    FileIndex {
        hash: fnv1a(text.as_bytes()),
        fns,
        allows,
    }
}

// --- cache serialization ------------------------------------------------

fn esc(s: &str) -> String {
    s.replace('%', "%25").replace(' ', "%20")
}

fn unesc(s: &str) -> String {
    s.replace("%20", " ").replace("%25", "%")
}

fn opt(s: &Option<String>) -> String {
    match s {
        Some(v) if !v.is_empty() => esc(v),
        _ => "-".to_string(),
    }
}

fn list(v: &[String]) -> String {
    if v.is_empty() {
        "-".to_string()
    } else {
        v.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
    }
}

fn parse_opt(s: &str) -> Option<String> {
    if s == "-" {
        None
    } else {
        Some(unesc(s))
    }
}

fn parse_list(s: &str) -> Vec<String> {
    if s == "-" {
        Vec::new()
    } else {
        s.split(',').map(unesc).collect()
    }
}

/// Serializes the index into the cache's line format.
pub fn to_cache_string(index: &WorkspaceIndex) -> String {
    let mut out = format!("g4check-index {INDEX_VERSION}\n");
    for (path, fi) in &index.files {
        out.push_str(&format!("f {} {:016x}\n", esc(path), fi.hash));
        for (line, rule) in &fi.allows {
            out.push_str(&format!("a {line} {}\n", esc(rule)));
        }
        for f in &fi.fns {
            let flags = u8::from(f.is_test)
                | u8::from(f.doc_panics) << 1
                | u8::from(f.returns_guard) << 2
                | u8::from(f.sig_float) << 3;
            out.push_str(&format!(
                "n {} {} {} {} {} {}\n",
                f.line,
                flags,
                esc(&f.name),
                opt(&f.owner),
                if f.module.is_empty() {
                    "-".to_string()
                } else {
                    esc(&f.module)
                },
                list(&f.params),
            ));
            for c in &f.calls {
                let cflags = u8::from(c.method) | u8::from(c.consumed_guard) << 1;
                out.push_str(&format!(
                    "c {} {} {} {} {} {}\n",
                    c.line,
                    cflags,
                    esc(&c.callee),
                    opt(&c.recv),
                    list(&c.held),
                    list(&c.acquired),
                ));
            }
            for x in &f.casts {
                out.push_str(&format!(
                    "x {} {} {}\n",
                    x.line,
                    u8::from(x.safe),
                    esc(&x.ty)
                ));
            }
            for r in &f.reductions {
                out.push_str(&format!(
                    "r {} {} {}\n",
                    r.line,
                    u8::from(r.hinted),
                    esc(&r.what)
                ));
            }
            for m in &f.accums {
                out.push_str(&format!("m {}\n", m.line));
            }
            for p in &f.panics {
                out.push_str(&format!("p {} {}\n", p.line, esc(&p.what)));
            }
            for d in &f.flows {
                out.push_str(&format!(
                    "d {} {} {} {}\n",
                    d.line,
                    esc(&d.what),
                    esc(&d.dst),
                    list(&d.srcs),
                ));
            }
        }
        out.push_str(".\n");
    }
    out
}

/// Parses a cache string back into an index. Any anomaly yields `None` —
/// a cache is never trusted partially.
pub fn from_cache_string(text: &str) -> Option<WorkspaceIndex> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let version: u32 = header.strip_prefix("g4check-index ")?.parse().ok()?;
    if version != INDEX_VERSION {
        return None;
    }
    let mut index = WorkspaceIndex::default();
    let mut cur: Option<(String, FileIndex)> = None;
    for line in lines {
        let mut parts = line.split(' ');
        let tag = parts.next()?;
        match tag {
            "f" => {
                if cur.is_some() {
                    return None; // missing terminator
                }
                let path = unesc(parts.next()?);
                let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
                cur = Some((
                    path,
                    FileIndex {
                        hash,
                        ..FileIndex::default()
                    },
                ));
            }
            "." => {
                let (path, fi) = cur.take()?;
                index.files.insert(path, fi);
            }
            "a" => {
                let fi = &mut cur.as_mut()?.1;
                let line_no: u32 = parts.next()?.parse().ok()?;
                fi.allows.push((line_no, unesc(parts.next()?)));
            }
            "n" => {
                let fi = &mut cur.as_mut()?.1;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let flags: u8 = parts.next()?.parse().ok()?;
                let name = unesc(parts.next()?);
                let owner = parse_opt(parts.next()?);
                let module = parse_opt(parts.next()?).unwrap_or_default();
                let params = parse_list(parts.next()?);
                fi.fns.push(FnRecord {
                    name,
                    owner,
                    module,
                    line: line_no,
                    is_test: flags & 1 != 0,
                    doc_panics: flags & 2 != 0,
                    returns_guard: flags & 4 != 0,
                    sig_float: flags & 8 != 0,
                    params,
                    calls: Vec::new(),
                    casts: Vec::new(),
                    reductions: Vec::new(),
                    accums: Vec::new(),
                    panics: Vec::new(),
                    flows: Vec::new(),
                });
            }
            "c" => {
                let f = cur.as_mut()?.1.fns.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let flags: u8 = parts.next()?.parse().ok()?;
                f.calls.push(CallRecord {
                    callee: unesc(parts.next()?),
                    recv: parse_opt(parts.next()?),
                    method: flags & 1 != 0,
                    line: line_no,
                    held: parse_list(parts.next()?),
                    acquired: parse_list(parts.next()?),
                    consumed_guard: flags & 2 != 0,
                });
            }
            "x" => {
                let f = cur.as_mut()?.1.fns.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let safe: u8 = parts.next()?.parse().ok()?;
                f.casts.push(CastRecord {
                    line: line_no,
                    ty: unesc(parts.next()?),
                    safe: safe != 0,
                });
            }
            "r" => {
                let f = cur.as_mut()?.1.fns.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let hinted: u8 = parts.next()?.parse().ok()?;
                f.reductions.push(ReductionRecord {
                    line: line_no,
                    what: unesc(parts.next()?),
                    hinted: hinted != 0,
                });
            }
            "m" => {
                let f = cur.as_mut()?.1.fns.last_mut()?;
                f.accums.push(AccumRecord {
                    line: parts.next()?.parse().ok()?,
                });
            }
            "p" => {
                let f = cur.as_mut()?.1.fns.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                f.panics.push(PanicRecord {
                    line: line_no,
                    what: unesc(parts.next()?),
                });
            }
            "d" => {
                let f = cur.as_mut()?.1.fns.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let what = unesc(parts.next()?);
                let dst = unesc(parts.next()?);
                f.flows.push(FlowRecord {
                    line: line_no,
                    dst,
                    srcs: parse_list(parts.next()?),
                    what,
                });
            }
            _ => return None,
        }
    }
    if cur.is_some() {
        return None;
    }
    Some(index)
}

/// Loads a cached index from `path`, tolerating absence and corruption
/// (both yield `None` and force a full rebuild).
pub fn load_cache(path: &Path) -> Option<WorkspaceIndex> {
    let text = std::fs::read_to_string(path).ok()?;
    from_cache_string(&text)
}

/// Persists the index to `path`, creating parent directories.
///
/// # Errors
///
/// Returns an error when the cache directory or file cannot be written.
pub fn save_cache(path: &Path, index: &WorkspaceIndex) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating cache dir {}: {e}", parent.display()))?;
    }
    std::fs::write(path, to_cache_string(index))
        .map_err(|e| format!("writing cache {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(src: &str) -> FileIndex {
        index_file(Path::new("crates/demo/src/lib.rs"), src)
    }

    #[test]
    fn indexes_fns_with_owners_and_modules() {
        let src = "mod outer { mod inner { pub fn free() {} } }\n\
                   struct S { m: Mutex<u32> }\n\
                   impl S { fn method(&self) { self.m.lock(); } }\n";
        let fi = idx(src);
        assert_eq!(fi.fns.len(), 2);
        assert_eq!(fi.fns[0].name, "free");
        assert_eq!(fi.fns[0].module, "outer::inner");
        assert_eq!(fi.fns[1].display(), "S::method");
        assert_eq!(fi.fns[1].calls[0].acquired, vec!["S::m".to_string()]);
    }

    #[test]
    fn raw_strings_produce_no_calls() {
        let src = "fn f() -> &'static str { r#\"foo() bar.lock()\"# }\n";
        let fi = idx(src);
        assert!(fi.fns[0].calls.is_empty());
    }

    #[test]
    fn held_guards_tracked_through_scopes() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
impl S {\n\
    fn f(&self) {\n\
        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
        self.go();\n\
        drop(g);\n\
        self.go();\n\
    }\n\
    fn go(&self) {}\n\
}\n";
        let fi = idx(src);
        let f = &fi.fns[0];
        let gos: Vec<&CallRecord> = f.calls.iter().filter(|c| c.callee == "go").collect();
        assert_eq!(gos.len(), 2);
        assert_eq!(gos[0].held, vec!["S::a".to_string()]);
        assert!(gos[1].held.is_empty(), "drop(g) must kill the guard");
    }

    #[test]
    fn block_scoped_guard_dies_at_brace() {
        let src = "struct S { a: Mutex<u32> }\n\
impl S {\n\
    fn f(&self) {\n\
        let x = { let g = self.a.lock(); g.checked_add(1) };\n\
        self.go();\n\
    }\n\
    fn go(&self) {}\n\
}\n";
        let fi = idx(src);
        let go = fi.fns[0].calls.iter().find(|c| c.callee == "go");
        assert!(go.is_some_and(|c| c.held.is_empty()));
    }

    #[test]
    fn guard_moved_into_call_is_consumed() {
        let src = "struct S { a: Mutex<u32>, c: Condvar }\n\
impl S {\n\
    fn f(&self) {\n\
        let mut state = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
        state = self.wait(&self.c, state);\n\
        self.go();\n\
    }\n\
    fn wait<'a>(&self, c: &Condvar, g: MutexGuard<'a, u32>) -> MutexGuard<'a, u32> { g }\n\
    fn go(&self) {}\n\
}\n";
        let fi = idx(src);
        let f = &fi.fns[0];
        let wait = f
            .calls
            .iter()
            .find(|c| c.callee == "wait")
            .expect("wait call");
        assert!(
            wait.held.is_empty(),
            "handoff must not count as held: {:?}",
            wait.held
        );
        assert!(wait.consumed_guard);
        let go = f.calls.iter().find(|c| c.callee == "go").expect("go call");
        assert_eq!(
            go.held,
            vec!["S::a".to_string()],
            "rebind revives the guard"
        );
    }

    #[test]
    fn casts_and_clamp_safety() {
        let src = "fn q(x: f32) -> i8 { let a = x as i8; let b = x.clamp(-127.0, 127.0) as i8; a.wrapping_add(b) }\n";
        let fi = idx(src);
        let f = &fi.fns[0];
        assert_eq!(f.casts.len(), 2);
        assert!(!f.casts[0].safe);
        assert!(f.casts[1].safe);
    }

    #[test]
    fn reductions_and_hints() {
        let src = "fn n(xs: &[f32]) -> f32 { xs.iter().map(|v| v * v).sum() }\n\
                   fn m(xs: &[u64]) -> u64 { xs.iter().sum() }\n";
        let fi = idx(src);
        assert!(fi.fns[0].reductions[0].hinted, "sig mentions f32");
        assert!(!fi.fns[1].reductions[0].hinted);
    }

    #[test]
    fn turbofish_reductions_are_detected() {
        let src = "fn n(xs: &[u64]) -> u32 {\n\
                       let s = xs.iter().map(|v| (v % 7) as f64)\n\
                           .sum::<f64>();\n\
                       s as u32\n\
                   }\n";
        let fi = idx(src);
        assert_eq!(fi.fns[0].reductions.len(), 1, "sum::<f64>() is a reduction");
        assert!(
            fi.fns[0].reductions[0].hinted,
            "turbofish names the float type"
        );
    }

    #[test]
    fn split_accumulators_detected() {
        let src = "fn k(xs: &[f32]) -> f32 {\n\
                       let (mut s0, mut s1) = (0.0f32, 0.0f32);\n\
                       for x in xs { s0 += x; s1 += x; }\n\
                       s0 + s1\n\
                   }\n\
                   fn plain(xs: &[f32]) -> f32 { let mut s = 0.0f32; for x in xs { s += x; } s }\n";
        let fi = idx(src);
        assert_eq!(fi.fns[0].accums.len(), 1);
        assert!(fi.fns[1].accums.is_empty(), "a single accumulator is fine");
    }

    #[test]
    fn panic_sites_and_doc_exemptions() {
        let src = "/// Doc.\n///\n/// # Panics\n///\n/// When x is 0.\npub fn f(x: u32) -> u32 { assert_ne!(x, 0); 1 / x }\n\
                   fn g() { panic!(\"boom\"); }\n\
                   fn h(v: Vec<u32>) -> u32 { v.first().copied().unwrap() }\n";
        let fi = idx(src);
        assert!(fi.fns[0].doc_panics);
        assert_eq!(fi.fns[1].panics[0].what, "panic!");
        assert_eq!(fi.fns[2].panics[0].what, ".unwrap(");
    }

    #[test]
    fn typed_locals_resolve_method_receivers() {
        let src = "fn run() {\n\
                       let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::make(8));\n\
                       queue.push(1);\n\
                       let q2 = Arc::clone(&queue);\n\
                       q2.push(2);\n\
                   }\n";
        let fi = idx(src);
        let pushes: Vec<&CallRecord> = fi.fns[0]
            .calls
            .iter()
            .filter(|c| c.callee == "push")
            .collect();
        assert_eq!(pushes.len(), 2);
        assert_eq!(pushes[0].recv.as_deref(), Some("BoundedQueue"));
        assert_eq!(pushes[1].recv.as_deref(), Some("BoundedQueue"));
    }

    #[test]
    fn cache_round_trips_losslessly() {
        let src = "struct S { a: Mutex<u32> }\n\
impl S {\n\
    fn f(&self, xs: &[f32]) -> f32 {\n\
        let g = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
        let n = g.checked_add(1);\n\
        let q = *xs.first().unwrap_or(&0.0) as i8;\n\
        xs.iter().map(|v| v * v).sum::<f32>() + f64::from(q) as f32\n\
    }\n\
}\n";
        let fi = idx(src);
        let mut ws = WorkspaceIndex::default();
        ws.files.insert("crates/demo/src/lib.rs".to_string(), fi);
        let text = to_cache_string(&ws);
        let back = from_cache_string(&text).expect("parse");
        assert_eq!(ws, back);
    }

    #[test]
    fn corrupt_cache_is_rejected() {
        assert!(from_cache_string("g4check-index 999\n").is_none());
        assert!(from_cache_string("g4check-index 2\nf a 00").is_none());
        assert!(
            from_cache_string("g4check-index 1\n").is_none(),
            "a v1 cache is stale once flows exist"
        );
        assert!(from_cache_string("garbage").is_none());
    }

    #[test]
    fn dataflow_let_assign_and_return() {
        let src = "fn f(n: usize) -> usize { let a = n; let mut b = a; b = a; b }\n";
        let fi = idx(src);
        let f = &fi.fns[0];
        assert_eq!(f.params, vec!["n".to_string()]);
        let lets: Vec<&FlowRecord> = f.flows.iter().filter(|d| d.what == "let").collect();
        assert_eq!(lets[0].dst, "v:a");
        assert_eq!(lets[0].srcs, vec!["v:n".to_string()]);
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "assign" && d.dst == "v:b" && d.srcs.contains(&"v:a".to_string())));
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "ret" && d.dst == "r" && d.srcs == vec!["v:b".to_string()]));
    }

    #[test]
    fn dataflow_call_args_and_results() {
        let src = "fn f(n: usize) -> Vec<u8> { let v = Vec::with_capacity(n); v }\n";
        let fi = idx(src);
        let f = &fi.fns[0];
        let k = f
            .calls
            .iter()
            .position(|c| c.callee == "with_capacity")
            .expect("call indexed");
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "arg" && d.dst == format!("a:{k}:0") && d.srcs == ["v:n"]));
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "let" && d.dst == "v:v" && d.srcs == [format!("c:{k}")]));
    }

    #[test]
    fn dataflow_field_projection_and_receiver_chain() {
        let src = "fn f(h: Header) -> usize { let r = h.rows; let s = h.cols.min(r); s }\n";
        let fi = idx(src);
        let f = &fi.fns[0];
        // field projection: the whole-struct root carries the value
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "let" && d.dst == "v:r" && d.srcs == ["v:h"]));
        // method chain: the call node flows from its receiver root
        let k = f
            .calls
            .iter()
            .position(|c| c.callee == "min")
            .expect("min call");
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "recv:min" && d.dst == format!("c:{k}") && d.srcs == ["v:h"]));
    }

    #[test]
    fn dataflow_cmp_arith_and_vec_facts() {
        let src = "fn f(rows: usize, cols: usize) -> Vec<u8> {\n\
                       if rows > MAX_ROWS { return Vec::new(); }\n\
                       let n = rows * cols;\n\
                       vec![0u8; n]\n\
                   }\n";
        let fi = idx(src);
        let f = &fi.fns[0];
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "cmp:MAX_ROWS" && d.dst == "v:rows"));
        assert!(
            f.flows
                .iter()
                .any(|d| d.what == "arith:*"
                    && d.srcs == ["v:rows".to_string(), "v:cols".to_string()])
        );
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "alloc:vec!" && d.srcs == ["v:n"]));
    }

    #[test]
    fn dataflow_discard_records() {
        let src = "fn f(s: String) { let _ = parse_config(s); check(s).ok(); }\n\
                   fn parse_config(s: String) -> Result<u32, ()> { s.parse().map_err(|_| ()) }\n\
                   fn check(s: String) -> Result<(), ()> { let _ = s; Ok(()) }\n";
        let fi = idx(src);
        let f = &fi.fns[0];
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "discard:parse_config" && d.dst == "_"));
        assert!(f
            .flows
            .iter()
            .any(|d| d.what == "ok:check" && d.dst == "ok"));
    }

    #[test]
    fn dataflow_params_keep_positions() {
        let src = "impl S { fn m(&self, mut a: u32, (b, c): (u32, u32), d: &[u8]) {} }\n";
        let fi = idx(src);
        assert_eq!(
            fi.fns[0].params,
            vec!["a".to_string(), "b".to_string(), "d".to_string()],
            "self excluded, tuple pattern approximated by its first ident"
        );
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Vec::<u32>::new().pop().unwrap(); }\n}\nfn lib() {}\n";
        let fi = idx(src);
        assert!(fi.fns[0].is_test);
        assert!(!fi.fns[1].is_test);
    }
}
