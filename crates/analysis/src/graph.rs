//! Phase 2 substrate: the cross-file **symbol graph** over a
//! [`WorkspaceIndex`].
//!
//! Resolves call records to workspace function definitions and computes
//! the transitive properties the graph lints query:
//!
//! - `blocking(f)` — `f` directly performs a blocking operation
//!   (condvar wait, channel `recv`, `sleep`, line-oriented I/O) or
//!   transitively calls a workspace fn that does. `BoundedQueue::push`
//!   and `pop` become blocking with no special-casing: their bodies
//!   contain the condvar wait.
//! - `acquires(f)` — the set of lock ids `f` acquires directly or
//!   transitively, for lock-order-inversion pairing.
//! - reachability from a set of entry points, with parent links so a
//!   sample call path can be printed.
//! - an interprocedural **taint fixpoint** ([`SymbolGraph::compute_taint`])
//!   over the per-fn dataflow records: untrusted values from registered
//!   source fns propagate through let/assign/arg/return edges and across
//!   resolved call edges until stable, with registered sanitizers and
//!   limit comparisons clearing taint.
//!
//! Resolution is precision-first: a method call resolves only through a
//! known receiver type or a workspace-unique method name that is not a
//! common std name (`push`, `len`, ...). Unresolved calls produce no
//! edge — a missed edge costs recall, a wrong edge costs trust.

use std::collections::{BTreeMap, BTreeSet};

use crate::index::{CallRecord, FnRecord, WorkspaceIndex};

/// Method names that directly block the calling thread.
pub const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "sleep",
    "park",
    "accept",
    "connect",
    "read_line",
    "read_until",
    "read_to_string",
    "read_to_end",
    "flush",
    "write_all",
];

/// I/O macros that block when invoked under a lock.
pub const BLOCKING_MACROS: &[&str] = &[
    "write!",
    "writeln!",
    "print!",
    "println!",
    "eprint!",
    "eprintln!",
];

/// (type, method) pairs that must never run while a guard is held, even
/// though they are acquisitions rather than blocking waits.
pub const NEVER_UNDER_LOCK: &[(&str, &str)] = &[
    ("BoundedQueue", "push"),
    ("BoundedQueue", "pop"),
    ("PublicationSlot", "publish"),
];

/// Common std method names excluded from unique-name fallback
/// resolution — `v.push(x)` must not resolve to `BoundedQueue::push`
/// just because that is the only `push` defined in the workspace.
const COMMON_METHODS: &[&str] = &[
    "push",
    "pop",
    "new",
    "len",
    "is_empty",
    "get",
    "insert",
    "remove",
    "clear",
    "next",
    "iter",
    "clone",
    "lock",
    "load",
    "store",
    "write",
    "read",
    "send",
    "recv",
    "wait",
    "flush",
    "drain",
    "extend",
    "contains",
    "join",
    "push_back",
    "pop_front",
    "name",
    "kind",
    "version",
    "open",
    "run",
    "main",
    "close",
    "take",
    "drop",
    "fmt",
    "default",
    "from",
    "into",
    "get_mut",
    "as_ref",
    "as_mut",
    "map",
    "filter",
    "count",
    "find",
    "last",
    "first",
    "split",
    "merge",
    "add",
    "sub",
    "mul",
    "div",
    "eq",
    "cmp",
    "hash",
    "index",
    "call",
    "apply",
    "update",
    "reset",
    "init",
    "start",
    "stop",
    "finish",
    "build",
    "parse",
    "decode",
    "encode",
];

/// One function in the graph: its file and index within that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnId(pub usize);

/// The resolved cross-file symbol graph.
pub struct SymbolGraph<'a> {
    /// (file path, fn record) per graph node, in deterministic order.
    pub fns: Vec<(&'a str, &'a FnRecord)>,
    /// Resolved call edges: for each fn, (call index, callee fn).
    pub call_edges: Vec<Vec<(usize, FnId)>>,
    /// Transitive blocking property per fn.
    pub blocking: Vec<bool>,
    /// Why a fn is directly blocking, for messages ("" = not direct).
    pub direct_block: Vec<String>,
    /// Transitive "reaches a NEVER_UNDER_LOCK fn" per fn, with the
    /// offending target's display name.
    pub reaches_never: Vec<Option<String>>,
    /// Transitive lock-id acquisition sets per fn.
    pub acquires: Vec<Vec<String>>,
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    method_by_name: BTreeMap<String, Vec<usize>>,
}

impl<'a> SymbolGraph<'a> {
    /// Builds the graph: resolution pass then fixpoint passes.
    pub fn build(index: &'a WorkspaceIndex) -> Self {
        let mut fns: Vec<(&str, &FnRecord)> = Vec::new();
        for (path, fi) in &index.files {
            for f in &fi.fns {
                fns.push((path.as_str(), f));
            }
        }

        let mut by_owner_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, (_, f)) in fns.iter().enumerate() {
            match &f.owner {
                Some(o) => {
                    by_owner_name
                        .entry((o.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                    method_by_name.entry(f.name.clone()).or_default().push(i);
                }
                None => free_by_name.entry(f.name.clone()).or_default().push(i),
            }
        }

        let mut g = SymbolGraph {
            fns,
            call_edges: Vec::new(),
            blocking: Vec::new(),
            direct_block: Vec::new(),
            reaches_never: Vec::new(),
            acquires: Vec::new(),
            by_owner_name,
            free_by_name,
            method_by_name,
        };

        // resolution pass
        for i in 0..g.fns.len() {
            let mut edges = Vec::new();
            for (ci, call) in g.fns[i].1.calls.iter().enumerate() {
                for target in g.resolve(call) {
                    edges.push((ci, FnId(target)));
                }
            }
            g.call_edges.push(edges);
        }

        g.compute_fixpoints();
        g
    }

    /// Candidate definitions for one call record.
    fn resolve(&self, call: &CallRecord) -> Vec<usize> {
        if call.callee.ends_with('!') {
            return Vec::new();
        }
        if let Some(recv) = &call.recv {
            return self
                .by_owner_name
                .get(&(recv.clone(), call.callee.clone()))
                .cloned()
                .unwrap_or_default();
        }
        if call.method {
            // unique-name fallback, guarded against common std names
            if COMMON_METHODS.contains(&call.callee.as_str()) {
                return Vec::new();
            }
            let candidates = self
                .method_by_name
                .get(&call.callee)
                .cloned()
                .unwrap_or_default();
            let owners: std::collections::BTreeSet<&Option<String>> =
                candidates.iter().map(|&i| &self.fns[i].1.owner).collect();
            if owners.len() == 1 {
                return candidates;
            }
            return Vec::new();
        }
        self.free_by_name
            .get(&call.callee)
            .cloned()
            .unwrap_or_default()
    }

    fn compute_fixpoints(&mut self) {
        let n = self.fns.len();
        // direct blocking
        self.direct_block = vec![String::new(); n];
        for (i, (_, f)) in self.fns.iter().enumerate() {
            for call in &f.calls {
                if call.method && BLOCKING_METHODS.contains(&call.callee.as_str()) {
                    self.direct_block[i] = format!("calls `.{}()`", call.callee);
                    break;
                }
            }
        }
        self.blocking = self.direct_block.iter().map(|s| !s.is_empty()).collect();

        // never-under-lock targets
        self.reaches_never = vec![None; n];
        for (i, (_, f)) in self.fns.iter().enumerate() {
            if let Some(o) = &f.owner {
                if NEVER_UNDER_LOCK.contains(&(o.as_str(), f.name.as_str())) {
                    self.reaches_never[i] = Some(f.display());
                }
            }
        }

        // direct acquires
        self.acquires = self
            .fns
            .iter()
            .map(|(_, f)| {
                let mut ids: Vec<String> = f
                    .calls
                    .iter()
                    .flat_map(|c| c.acquired.iter().cloned())
                    .collect();
                ids.sort();
                ids.dedup();
                ids
            })
            .collect();

        // fixpoint propagation over call edges
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &(_, FnId(j)) in &self.call_edges[i] {
                    if self.blocking[j] && !self.blocking[i] {
                        self.blocking[i] = true;
                        changed = true;
                    }
                    if self.reaches_never[i].is_none() {
                        if let Some(t) = self.reaches_never[j].clone() {
                            self.reaches_never[i] = Some(t);
                            changed = true;
                        }
                    }
                    let extra: Vec<String> = self.acquires[j]
                        .iter()
                        .filter(|id| !self.acquires[i].contains(*id))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        self.acquires[i].extend(extra);
                        self.acquires[i].sort();
                        changed = true;
                    }
                }
            }
        }
    }

    /// Why calling fn `j` under a lock is hazardous, if it is.
    pub fn hazard(&self, j: usize) -> Option<String> {
        if let Some(t) = &self.reaches_never[j] {
            return Some(format!("reaches `{t}` (must never run under a lock)"));
        }
        if self.blocking[j] {
            let why = if self.direct_block[j].is_empty() {
                "transitively blocks".to_string()
            } else {
                self.direct_block[j].clone()
            };
            return Some(format!("blocks ({why})"));
        }
        None
    }

    /// BFS from `entries`, returning a parent map (fn → (parent, call
    /// line)) covering every reachable fn.
    pub fn reach(&self, entries: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e) {
                v.insert(None);
                queue.push_back(e);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &(_, FnId(j)) in &self.call_edges[i] {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(j) {
                    v.insert(Some(i));
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// Renders `entry → ... → target` from a parent map.
    pub fn path_to(&self, parent: &BTreeMap<usize, Option<usize>>, target: usize) -> String {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(Some(p)) = parent.get(&cur) {
            chain.push(*p);
            cur = *p;
            if chain.len() > 32 {
                break;
            }
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.fns[i].1.display())
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Looks up a fn by file path and display name.
    pub fn find(&self, path: &str, display: &str) -> Option<usize> {
        self.fns
            .iter()
            .position(|(p, f)| *p == path && f.display() == display)
    }

    /// Runs the interprocedural taint fixpoint over the dataflow
    /// records and resolved call edges. Returns, per fn (parallel to
    /// [`SymbolGraph::fns`]), the set of tainted node keys (`v:x`,
    /// `c:k`, `a:k:p`, `r` — see [`crate::index::FlowRecord`]).
    ///
    /// Semantics, in the over-approximating spirit of the index:
    ///
    /// - A registered **source fn**'s parameters are tainted (the fn is
    ///   the trust boundary ingesting raw bytes), and every call
    ///   resolving to it yields a tainted result; registered external
    ///   source callees (`read_to_string`, ...) taint their results
    ///   too.
    /// - Taint follows every flow edge; a call result tainted when its
    ///   resolved callee's return is tainted, or — for unresolved
    ///   calls — when any argument is (pass-through like `Some(x)`).
    /// - A **sanitizer** callee's result is never tainted; a variable
    ///   compared against a registered **limit** ident is cleared for
    ///   its whole fn (flow-insensitive: the comparison is taken as the
    ///   bound that the fn enforces).
    /// - Test fns do not seed callee parameters: a test feeding crafted
    ///   bytes into a helper is the test's business, not a finding.
    pub fn compute_taint(&self, cfg: &TaintConfig<'_>) -> Vec<BTreeSet<String>> {
        let n = self.fns.len();
        // resolved targets per (fn, call index)
        let mut targets: Vec<BTreeMap<usize, Vec<usize>>> = vec![BTreeMap::new(); n];
        for (tmap, edges) in targets.iter_mut().zip(&self.call_edges) {
            for &(ci, FnId(j)) in edges {
                tmap.entry(ci).or_default().push(j);
            }
        }
        // vars cleared by a comparison against a registered limit
        let cleared: Vec<BTreeSet<&str>> = self
            .fns
            .iter()
            .map(|(_, f)| {
                f.flows
                    .iter()
                    .filter_map(|d| {
                        let lim = d.what.strip_prefix("cmp:")?;
                        cfg.limits.contains(&lim).then_some(d.dst.as_str())
                    })
                    .collect()
            })
            .collect();
        let is_source_fn: Vec<bool> = self
            .fns
            .iter()
            .map(|(p, f)| {
                cfg.source_fns
                    .iter()
                    .any(|(sp, sf)| sp == p && *sf == f.display())
            })
            .collect();

        let mut tainted: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        for i in 0..n {
            if is_source_fn[i] {
                for name in &self.fns[i].1.params {
                    if name != "_" {
                        let node = format!("v:{name}");
                        if !cleared[i].contains(node.as_str()) {
                            tainted[i].insert(node);
                        }
                    }
                }
            }
        }

        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                let f = self.fns[i].1;
                // intra-fn propagation to a local fixpoint
                loop {
                    let mut local = false;
                    for (ci, call) in f.calls.iter().enumerate() {
                        let node = format!("c:{ci}");
                        if tainted[i].contains(&node)
                            || cfg.sanitizers.contains(&call.callee.as_str())
                        {
                            continue;
                        }
                        let mut t = cfg.source_callees.contains(&call.callee.as_str());
                        if let Some(ts) = targets[i].get(&ci) {
                            t = t
                                || ts
                                    .iter()
                                    .any(|&j| is_source_fn[j] || tainted[j].contains("r"));
                        } else {
                            // unresolved: pass-through from arguments
                            let prefix = format!("a:{ci}:");
                            t = t || tainted[i].iter().any(|k| k.starts_with(&prefix));
                        }
                        if t {
                            tainted[i].insert(node);
                            local = true;
                        }
                    }
                    for d in &f.flows {
                        if d.srcs.is_empty()
                            || tainted[i].contains(&d.dst)
                            || cleared[i].contains(d.dst.as_str())
                        {
                            continue;
                        }
                        if let Some(ci) = d
                            .dst
                            .strip_prefix("c:")
                            .and_then(|s| s.parse::<usize>().ok())
                        {
                            if f.calls
                                .get(ci)
                                .is_some_and(|c| cfg.sanitizers.contains(&c.callee.as_str()))
                            {
                                continue;
                            }
                        }
                        if d.srcs.iter().any(|s| tainted[i].contains(s)) {
                            tainted[i].insert(d.dst.clone());
                            local = true;
                        }
                    }
                    if !local {
                        break;
                    }
                    changed = true;
                }
                // interproc: tainted argument positions seed callee params
                if f.is_test {
                    continue;
                }
                let mut seeds: Vec<(usize, String)> = Vec::new();
                for d in &f.flows {
                    let Some(rest) = d.dst.strip_prefix("a:") else {
                        continue;
                    };
                    if !tainted[i].contains(&d.dst) {
                        continue;
                    }
                    let mut it = rest.split(':');
                    let ci = it.next().and_then(|s| s.parse::<usize>().ok());
                    let p = it.next().and_then(|s| s.parse::<usize>().ok());
                    let (Some(ci), Some(p)) = (ci, p) else {
                        continue;
                    };
                    if let Some(ts) = targets[i].get(&ci) {
                        for &j in ts {
                            if let Some(name) = self.fns[j].1.params.get(p) {
                                if name != "_" {
                                    seeds.push((j, format!("v:{name}")));
                                }
                            }
                        }
                    }
                }
                for (j, node) in seeds {
                    if !cleared[j].contains(node.as_str()) && tainted[j].insert(node) {
                        changed = true;
                    }
                }
            }
        }
        tainted
    }
}

/// Configuration for [`SymbolGraph::compute_taint`]: what is untrusted
/// and what clears taint. The rule layer owns the registries; the
/// engine is generic.
pub struct TaintConfig<'a> {
    /// (file path, fn display name) rows whose results are untrusted
    /// and whose own parameters carry raw untrusted input.
    pub source_fns: &'a [(&'a str, &'a str)],
    /// External (non-workspace) callee names whose results are
    /// untrusted.
    pub source_callees: &'a [&'a str],
    /// Callee names whose results are never tainted.
    pub sanitizers: &'a [&'a str],
    /// Limit idents: a `cmp:<limit>` comparison clears the compared
    /// variable for its whole fn.
    pub limits: &'a [&'a str],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use std::path::Path;

    fn ws(files: &[(&str, &str)]) -> WorkspaceIndex {
        let mut index = WorkspaceIndex::default();
        for (path, src) in files {
            index
                .files
                .insert((*path).to_string(), index_file(Path::new(path), src));
        }
        index
    }

    #[test]
    fn blocking_propagates_through_helpers() {
        let index = ws(&[(
            "crates/demo/src/lib.rs",
            "struct Q { state: Mutex<u32>, cv: Condvar }\n\
impl Q {\n\
    pub fn push(&self) {\n\
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());\n\
        state = self.wait(state);\n\
        drop(state);\n\
    }\n\
    fn wait<'a>(&self, g: MutexGuard<'a, u32>) -> MutexGuard<'a, u32> {\n\
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())\n\
    }\n\
}\n\
pub fn outer(q: &Q) { q.push(); }\n",
        )]);
        let g = SymbolGraph::build(&index);
        let push = g.find("crates/demo/src/lib.rs", "Q::push").expect("push");
        let outer = g.find("crates/demo/src/lib.rs", "outer").expect("outer");
        assert!(g.blocking[push], "push waits on a condvar");
        assert!(g.blocking[outer], "outer calls push via typed param");
    }

    #[test]
    fn common_method_names_do_not_resolve_blind() {
        let index = ws(&[(
            "crates/demo/src/lib.rs",
            "struct Q;\nimpl Q { pub fn push(&self) { loop {} } }\n\
             pub fn innocent(v: &mut Vec<u32>) { v.push(1); }\n",
        )]);
        let g = SymbolGraph::build(&index);
        let innocent = g.find("crates/demo/src/lib.rs", "innocent").expect("fn");
        assert!(
            g.call_edges[innocent].is_empty(),
            "Vec::push must not resolve to Q::push"
        );
    }

    #[test]
    fn acquires_accumulate_transitively() {
        let index = ws(&[(
            "crates/demo/src/lib.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
impl S {\n\
    fn inner(&self) { let g = self.b.lock(); drop(g); }\n\
    pub fn outer(&self) { let g = self.a.lock(); self.inner(); drop(g); }\n\
}\n",
        )]);
        let g = SymbolGraph::build(&index);
        let outer = g.find("crates/demo/src/lib.rs", "S::outer").expect("fn");
        assert!(g.acquires[outer].contains(&"S::a".to_string()));
        assert!(g.acquires[outer].contains(&"S::b".to_string()));
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    fn taint_cfg() -> TaintConfig<'static> {
        TaintConfig {
            source_fns: &[(LIB, "untrusted_len")],
            source_callees: &["read_to_string"],
            sanitizers: &["min"],
            limits: &["MAX"],
        }
    }

    fn alloc_arg(g: &SymbolGraph<'_>, fn_idx: usize) -> String {
        let k = g.fns[fn_idx]
            .1
            .calls
            .iter()
            .position(|c| c.callee == "with_capacity")
            .expect("with_capacity call");
        format!("a:{k}:0")
    }

    #[test]
    fn taint_crosses_two_hops_and_sanitizers_clear() {
        let index = ws(&[(
            LIB,
            "pub fn untrusted_len() -> usize { 7 }\n\
             pub fn hop(n: usize) -> usize { n }\n\
             pub fn sink() -> Vec<u8> { let n = untrusted_len(); let m = hop(n); Vec::with_capacity(m) }\n\
             pub fn clean() -> Vec<u8> { let n = untrusted_len().min(64); Vec::with_capacity(n) }\n",
        )]);
        let g = SymbolGraph::build(&index);
        let t = g.compute_taint(&taint_cfg());
        let sink = g.find(LIB, "sink").expect("sink");
        assert!(
            t[sink].contains(&alloc_arg(&g, sink)),
            "source → hop → alloc stays tainted: {:?}",
            t[sink]
        );
        let clean = g.find(LIB, "clean").expect("clean");
        assert!(
            !t[clean].contains(&alloc_arg(&g, clean)),
            "`.min(64)` clears the chain: {:?}",
            t[clean]
        );
    }

    #[test]
    fn taint_cleared_by_limit_comparison() {
        let index = ws(&[(
            LIB,
            "pub fn untrusted_len() -> usize { 7 }\n\
             pub fn bounded() -> Vec<u8> {\n\
                 let n = untrusted_len();\n\
                 if n > MAX { return Vec::new(); }\n\
                 Vec::with_capacity(n)\n\
             }\n",
        )]);
        let g = SymbolGraph::build(&index);
        let t = g.compute_taint(&taint_cfg());
        let bounded = g.find(LIB, "bounded").expect("bounded");
        assert!(
            !t[bounded].contains("v:n"),
            "comparison against MAX clears v:n: {:?}",
            t[bounded]
        );
    }

    #[test]
    fn source_fn_params_and_external_callees_seed_taint() {
        let index = ws(&[(
            LIB,
            "pub fn untrusted_len(hint: usize) -> usize { hint }\n\
             pub fn loads(path: &str) -> String { std::fs::read_to_string(path).unwrap_or_default() }\n",
        )]);
        let g = SymbolGraph::build(&index);
        let t = g.compute_taint(&taint_cfg());
        let src = g.find(LIB, "untrusted_len").expect("src");
        assert!(t[src].contains("v:hint"), "source params are raw input");
        assert!(t[src].contains("r"), "and flow to the return value");
        let loads = g.find(LIB, "loads").expect("loads");
        assert!(
            t[loads].contains("r"),
            "external source callee taints its result: {:?}",
            t[loads]
        );
    }

    #[test]
    fn test_fns_do_not_seed_callee_params() {
        let index = ws(&[(
            LIB,
            "pub fn untrusted_len() -> usize { 7 }\n\
             pub fn helper(n: usize) -> usize { n }\n\
             #[test]\n\
             fn t() { let n = untrusted_len(); helper(n); }\n",
        )]);
        let g = SymbolGraph::build(&index);
        let t = g.compute_taint(&taint_cfg());
        let helper = g.find(LIB, "helper").expect("helper");
        assert!(
            !t[helper].contains("v:n"),
            "a test caller must not taint the lib fn: {:?}",
            t[helper]
        );
    }

    #[test]
    fn reachability_paths_render() {
        let index = ws(&[(
            "src/bin/tool.rs",
            "fn main() { step_one(); }\nfn step_one() { step_two(); }\nfn step_two() {}\n",
        )]);
        let g = SymbolGraph::build(&index);
        let main = g.find("src/bin/tool.rs", "main").expect("main");
        let two = g.find("src/bin/tool.rs", "step_two").expect("two");
        let parent = g.reach(&[main]);
        assert!(parent.contains_key(&two));
        assert_eq!(g.path_to(&parent, two), "main → step_one → step_two");
    }
}
