//! Phase 2 substrate: the cross-file **symbol graph** over a
//! [`WorkspaceIndex`].
//!
//! Resolves call records to workspace function definitions and computes
//! the transitive properties the graph lints query:
//!
//! - `blocking(f)` — `f` directly performs a blocking operation
//!   (condvar wait, channel `recv`, `sleep`, line-oriented I/O) or
//!   transitively calls a workspace fn that does. `BoundedQueue::push`
//!   and `pop` become blocking with no special-casing: their bodies
//!   contain the condvar wait.
//! - `acquires(f)` — the set of lock ids `f` acquires directly or
//!   transitively, for lock-order-inversion pairing.
//! - reachability from a set of entry points, with parent links so a
//!   sample call path can be printed.
//!
//! Resolution is precision-first: a method call resolves only through a
//! known receiver type or a workspace-unique method name that is not a
//! common std name (`push`, `len`, ...). Unresolved calls produce no
//! edge — a missed edge costs recall, a wrong edge costs trust.

use std::collections::BTreeMap;

use crate::index::{CallRecord, FnRecord, WorkspaceIndex};

/// Method names that directly block the calling thread.
pub const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "sleep",
    "park",
    "accept",
    "connect",
    "read_line",
    "read_until",
    "read_to_string",
    "read_to_end",
    "flush",
    "write_all",
];

/// I/O macros that block when invoked under a lock.
pub const BLOCKING_MACROS: &[&str] = &[
    "write!",
    "writeln!",
    "print!",
    "println!",
    "eprint!",
    "eprintln!",
];

/// (type, method) pairs that must never run while a guard is held, even
/// though they are acquisitions rather than blocking waits.
pub const NEVER_UNDER_LOCK: &[(&str, &str)] = &[
    ("BoundedQueue", "push"),
    ("BoundedQueue", "pop"),
    ("PublicationSlot", "publish"),
];

/// Common std method names excluded from unique-name fallback
/// resolution — `v.push(x)` must not resolve to `BoundedQueue::push`
/// just because that is the only `push` defined in the workspace.
const COMMON_METHODS: &[&str] = &[
    "push",
    "pop",
    "new",
    "len",
    "is_empty",
    "get",
    "insert",
    "remove",
    "clear",
    "next",
    "iter",
    "clone",
    "lock",
    "load",
    "store",
    "write",
    "read",
    "send",
    "recv",
    "wait",
    "flush",
    "drain",
    "extend",
    "contains",
    "join",
    "push_back",
    "pop_front",
    "name",
    "kind",
    "version",
    "open",
    "run",
    "main",
    "close",
    "take",
    "drop",
    "fmt",
    "default",
    "from",
    "into",
    "get_mut",
    "as_ref",
    "as_mut",
    "map",
    "filter",
    "count",
    "find",
    "last",
    "first",
    "split",
    "merge",
    "add",
    "sub",
    "mul",
    "div",
    "eq",
    "cmp",
    "hash",
    "index",
    "call",
    "apply",
    "update",
    "reset",
    "init",
    "start",
    "stop",
    "finish",
    "build",
    "parse",
    "decode",
    "encode",
];

/// One function in the graph: its file and index within that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnId(pub usize);

/// The resolved cross-file symbol graph.
pub struct SymbolGraph<'a> {
    /// (file path, fn record) per graph node, in deterministic order.
    pub fns: Vec<(&'a str, &'a FnRecord)>,
    /// Resolved call edges: for each fn, (call index, callee fn).
    pub call_edges: Vec<Vec<(usize, FnId)>>,
    /// Transitive blocking property per fn.
    pub blocking: Vec<bool>,
    /// Why a fn is directly blocking, for messages ("" = not direct).
    pub direct_block: Vec<String>,
    /// Transitive "reaches a NEVER_UNDER_LOCK fn" per fn, with the
    /// offending target's display name.
    pub reaches_never: Vec<Option<String>>,
    /// Transitive lock-id acquisition sets per fn.
    pub acquires: Vec<Vec<String>>,
    by_owner_name: BTreeMap<(String, String), Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    method_by_name: BTreeMap<String, Vec<usize>>,
}

impl<'a> SymbolGraph<'a> {
    /// Builds the graph: resolution pass then fixpoint passes.
    pub fn build(index: &'a WorkspaceIndex) -> Self {
        let mut fns: Vec<(&str, &FnRecord)> = Vec::new();
        for (path, fi) in &index.files {
            for f in &fi.fns {
                fns.push((path.as_str(), f));
            }
        }

        let mut by_owner_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, (_, f)) in fns.iter().enumerate() {
            match &f.owner {
                Some(o) => {
                    by_owner_name
                        .entry((o.clone(), f.name.clone()))
                        .or_default()
                        .push(i);
                    method_by_name.entry(f.name.clone()).or_default().push(i);
                }
                None => free_by_name.entry(f.name.clone()).or_default().push(i),
            }
        }

        let mut g = SymbolGraph {
            fns,
            call_edges: Vec::new(),
            blocking: Vec::new(),
            direct_block: Vec::new(),
            reaches_never: Vec::new(),
            acquires: Vec::new(),
            by_owner_name,
            free_by_name,
            method_by_name,
        };

        // resolution pass
        for i in 0..g.fns.len() {
            let mut edges = Vec::new();
            for (ci, call) in g.fns[i].1.calls.iter().enumerate() {
                for target in g.resolve(call) {
                    edges.push((ci, FnId(target)));
                }
            }
            g.call_edges.push(edges);
        }

        g.compute_fixpoints();
        g
    }

    /// Candidate definitions for one call record.
    fn resolve(&self, call: &CallRecord) -> Vec<usize> {
        if call.callee.ends_with('!') {
            return Vec::new();
        }
        if let Some(recv) = &call.recv {
            return self
                .by_owner_name
                .get(&(recv.clone(), call.callee.clone()))
                .cloned()
                .unwrap_or_default();
        }
        if call.method {
            // unique-name fallback, guarded against common std names
            if COMMON_METHODS.contains(&call.callee.as_str()) {
                return Vec::new();
            }
            let candidates = self
                .method_by_name
                .get(&call.callee)
                .cloned()
                .unwrap_or_default();
            let owners: std::collections::BTreeSet<&Option<String>> =
                candidates.iter().map(|&i| &self.fns[i].1.owner).collect();
            if owners.len() == 1 {
                return candidates;
            }
            return Vec::new();
        }
        self.free_by_name
            .get(&call.callee)
            .cloned()
            .unwrap_or_default()
    }

    fn compute_fixpoints(&mut self) {
        let n = self.fns.len();
        // direct blocking
        self.direct_block = vec![String::new(); n];
        for (i, (_, f)) in self.fns.iter().enumerate() {
            for call in &f.calls {
                if call.method && BLOCKING_METHODS.contains(&call.callee.as_str()) {
                    self.direct_block[i] = format!("calls `.{}()`", call.callee);
                    break;
                }
            }
        }
        self.blocking = self.direct_block.iter().map(|s| !s.is_empty()).collect();

        // never-under-lock targets
        self.reaches_never = vec![None; n];
        for (i, (_, f)) in self.fns.iter().enumerate() {
            if let Some(o) = &f.owner {
                if NEVER_UNDER_LOCK.contains(&(o.as_str(), f.name.as_str())) {
                    self.reaches_never[i] = Some(f.display());
                }
            }
        }

        // direct acquires
        self.acquires = self
            .fns
            .iter()
            .map(|(_, f)| {
                let mut ids: Vec<String> = f
                    .calls
                    .iter()
                    .flat_map(|c| c.acquired.iter().cloned())
                    .collect();
                ids.sort();
                ids.dedup();
                ids
            })
            .collect();

        // fixpoint propagation over call edges
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                for &(_, FnId(j)) in &self.call_edges[i] {
                    if self.blocking[j] && !self.blocking[i] {
                        self.blocking[i] = true;
                        changed = true;
                    }
                    if self.reaches_never[i].is_none() {
                        if let Some(t) = self.reaches_never[j].clone() {
                            self.reaches_never[i] = Some(t);
                            changed = true;
                        }
                    }
                    let extra: Vec<String> = self.acquires[j]
                        .iter()
                        .filter(|id| !self.acquires[i].contains(*id))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        self.acquires[i].extend(extra);
                        self.acquires[i].sort();
                        changed = true;
                    }
                }
            }
        }
    }

    /// Why calling fn `j` under a lock is hazardous, if it is.
    pub fn hazard(&self, j: usize) -> Option<String> {
        if let Some(t) = &self.reaches_never[j] {
            return Some(format!("reaches `{t}` (must never run under a lock)"));
        }
        if self.blocking[j] {
            let why = if self.direct_block[j].is_empty() {
                "transitively blocks".to_string()
            } else {
                self.direct_block[j].clone()
            };
            return Some(format!("blocks ({why})"));
        }
        None
    }

    /// BFS from `entries`, returning a parent map (fn → (parent, call
    /// line)) covering every reachable fn.
    pub fn reach(&self, entries: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e) {
                v.insert(None);
                queue.push_back(e);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &(_, FnId(j)) in &self.call_edges[i] {
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(j) {
                    v.insert(Some(i));
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// Renders `entry → ... → target` from a parent map.
    pub fn path_to(&self, parent: &BTreeMap<usize, Option<usize>>, target: usize) -> String {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(Some(p)) = parent.get(&cur) {
            chain.push(*p);
            cur = *p;
            if chain.len() > 32 {
                break;
            }
        }
        chain.reverse();
        chain
            .iter()
            .map(|&i| self.fns[i].1.display())
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Looks up a fn by file path and display name.
    pub fn find(&self, path: &str, display: &str) -> Option<usize> {
        self.fns
            .iter()
            .position(|(p, f)| *p == path && f.display() == display)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use std::path::Path;

    fn ws(files: &[(&str, &str)]) -> WorkspaceIndex {
        let mut index = WorkspaceIndex::default();
        for (path, src) in files {
            index
                .files
                .insert((*path).to_string(), index_file(Path::new(path), src));
        }
        index
    }

    #[test]
    fn blocking_propagates_through_helpers() {
        let index = ws(&[(
            "crates/demo/src/lib.rs",
            "struct Q { state: Mutex<u32>, cv: Condvar }\n\
impl Q {\n\
    pub fn push(&self) {\n\
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());\n\
        state = self.wait(state);\n\
        drop(state);\n\
    }\n\
    fn wait<'a>(&self, g: MutexGuard<'a, u32>) -> MutexGuard<'a, u32> {\n\
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())\n\
    }\n\
}\n\
pub fn outer(q: &Q) { q.push(); }\n",
        )]);
        let g = SymbolGraph::build(&index);
        let push = g.find("crates/demo/src/lib.rs", "Q::push").expect("push");
        let outer = g.find("crates/demo/src/lib.rs", "outer").expect("outer");
        assert!(g.blocking[push], "push waits on a condvar");
        assert!(g.blocking[outer], "outer calls push via typed param");
    }

    #[test]
    fn common_method_names_do_not_resolve_blind() {
        let index = ws(&[(
            "crates/demo/src/lib.rs",
            "struct Q;\nimpl Q { pub fn push(&self) { loop {} } }\n\
             pub fn innocent(v: &mut Vec<u32>) { v.push(1); }\n",
        )]);
        let g = SymbolGraph::build(&index);
        let innocent = g.find("crates/demo/src/lib.rs", "innocent").expect("fn");
        assert!(
            g.call_edges[innocent].is_empty(),
            "Vec::push must not resolve to Q::push"
        );
    }

    #[test]
    fn acquires_accumulate_transitively() {
        let index = ws(&[(
            "crates/demo/src/lib.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
impl S {\n\
    fn inner(&self) { let g = self.b.lock(); drop(g); }\n\
    pub fn outer(&self) { let g = self.a.lock(); self.inner(); drop(g); }\n\
}\n",
        )]);
        let g = SymbolGraph::build(&index);
        let outer = g.find("crates/demo/src/lib.rs", "S::outer").expect("fn");
        assert!(g.acquires[outer].contains(&"S::a".to_string()));
        assert!(g.acquires[outer].contains(&"S::b".to_string()));
    }

    #[test]
    fn reachability_paths_render() {
        let index = ws(&[(
            "src/bin/tool.rs",
            "fn main() { step_one(); }\nfn step_one() { step_two(); }\nfn step_two() {}\n",
        )]);
        let g = SymbolGraph::build(&index);
        let main = g.find("src/bin/tool.rs", "main").expect("main");
        let two = g.find("src/bin/tool.rs", "step_two").expect("two");
        let parent = g.reach(&[main]);
        assert!(parent.contains_key(&two));
        assert_eq!(g.path_to(&parent, two), "main → step_one → step_two");
    }
}
