//! The `g4check` source lint driver: a repo-specific invariant scanner
//! over the workspace's `.rs` files.
//!
//! This is deliberately *not* a rustc plugin or a syn-based AST walker —
//! the workspace is offline and dependency-free, so the scanner is a
//! lightweight line/token pass: comments and string literals are stripped
//! by a small state machine (nested block comments, raw strings, char
//! literals vs. lifetimes all handled), `#[cfg(test)]` regions are
//! tracked by brace depth, and each rule is a token scan over the
//! stripped code. That is enough to enforce conventions that rustc and
//! clippy cannot see, because they are *workspace policy*, not language
//! rules:
//!
//! | rule | enforces |
//! |---|---|
//! | `forbidden-rng` | no `thread_rng`/`from_entropy` outside the vendored tombstones — all randomness is seeded |
//! | `unwrap-in-lib` | no `.unwrap()`/`.expect(` in non-test library code without a `// g4check: allow` annotation |
//! | `forbid-unsafe` | `#![forbid(unsafe_code)]` present in every non-vendor crate root |
//! | `wallclock-in-test` | no `Instant::now`/`SystemTime::now` in deterministic test code |
//! | `format-registry` | every `BinWriter` kind/version written in source appears in tensor's `FORMATS` table and the README spec table; every `BinReader` site accepts the registered versions of the kind it reads |
//! | `bad-annotation` | every `g4check: allow(...)` names a real rule |
//!
//! Seven further rules — `lock-discipline`, `cast-truncation`,
//! `float-determinism`, `panic-path`, and the taint trio
//! `untrusted-alloc` / `len-overflow` / `error-swallow` — share this
//! module's [`Rule`]/[`Violation`] vocabulary but run as *graph* rules
//! over the cross-file symbol index; see [`crate::rules`] and the
//! workspace `RULES.md` for their semantics.
//!
//! Intentional exceptions are annotated in-source:
//!
//! ```text
//! // g4check: allow(unwrap-in-lib): index validated two lines above
//! let row = rows.get(i).unwrap();
//! ```
//!
//! An annotation suppresses the named rule on its own line and the line
//! directly below it, so it reads as a justification attached to the
//! site. Unknown rule names in an annotation are themselves violations —
//! a typo must not silently disable enforcement.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One enforced workspace invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `thread_rng`/`from_entropy` outside the vendored tombstones.
    ForbiddenRng,
    /// `.unwrap()`/`.expect(` in non-test library code without an
    /// explicit allow annotation.
    UnwrapInLib,
    /// A non-vendor crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`) inside
    /// deterministic test code.
    WallclockInTest,
    /// A `BinWriter` kind/version pair that drifted from the central
    /// `FORMATS` registry in `gnn4ip-tensor` or the README spec table,
    /// or a `BinReader` site whose accepted version window excludes a
    /// registered version of the kind it reads.
    FormatRegistry,
    /// A malformed `g4check: allow(...)` annotation or one naming an
    /// unknown rule.
    BadAnnotation,
    /// Lock-order inversion across functions, or a blocking call
    /// (I/O, `recv`, condvar waits, `BoundedQueue` push/pop, `publish`)
    /// while a `Mutex` guard is live. Graph lint over the symbol index.
    LockDiscipline,
    /// A narrowing `as` cast on the int8 quantization / serialization
    /// paths without a proven-range annotation. Graph lint.
    CastTruncation,
    /// A float reduction (`sum`, `product`, float `fold`, split
    /// accumulators) in a bit-identity-critical module outside the
    /// deterministic-kernel registry. Graph lint.
    FloatDeterminism,
    /// An unannotated panic site reachable from a CLI subcommand or
    /// serve worker entry point via the call graph. Graph lint.
    PanicPath,
    /// A tainted (attacker-influenced) length reaching an allocation
    /// site (`Vec::with_capacity`, `reserve`, `vec![x; n]`) without a
    /// registered bound check on the way. Taint graph lint.
    UntrustedAlloc,
    /// Tainted operands in unchecked `usize` length arithmetic
    /// (`rows * cols` without `checked_mul`). Taint graph lint.
    LenOverflow,
    /// A `Result` from a fallible parse of untrusted data discarded via
    /// `let _ =` or `.ok()` in non-test library code. Taint graph lint.
    ErrorSwallow,
}

impl Rule {
    /// The kebab-case name used in reports and allow annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::ForbiddenRng => "forbidden-rng",
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::WallclockInTest => "wallclock-in-test",
            Rule::FormatRegistry => "format-registry",
            Rule::BadAnnotation => "bad-annotation",
            Rule::LockDiscipline => "lock-discipline",
            Rule::CastTruncation => "cast-truncation",
            Rule::FloatDeterminism => "float-determinism",
            Rule::PanicPath => "panic-path",
            Rule::UntrustedAlloc => "untrusted-alloc",
            Rule::LenOverflow => "len-overflow",
            Rule::ErrorSwallow => "error-swallow",
        }
    }

    /// Every rule, in report order.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::ForbiddenRng,
            Rule::UnwrapInLib,
            Rule::ForbidUnsafe,
            Rule::WallclockInTest,
            Rule::FormatRegistry,
            Rule::BadAnnotation,
            Rule::LockDiscipline,
            Rule::CastTruncation,
            Rule::FloatDeterminism,
            Rule::PanicPath,
            Rule::UntrustedAlloc,
            Rule::LenOverflow,
            Rule::ErrorSwallow,
        ]
    }

    /// Resolves a kebab-case rule name (as written in an allow
    /// annotation).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::all().iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: Rule,
    /// Path relative to the linted root.
    pub path: PathBuf,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Where and how to lint.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding the workspace `Cargo.toml`,
    /// `README.md`, and `crates/`).
    pub root: PathBuf,
}

impl LintConfig {
    /// Lints the workspace rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }
}

/// What a [`run_lint`] pass found.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every violation, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — how the `g4check` binary and the self-run
/// test find the root without configuration.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Runs every rule over the workspace at `config.root` and returns the
/// findings.
///
/// # Errors
///
/// Returns an error when the root or a source file cannot be read — an
/// unreadable workspace must fail loudly, not pass vacuously.
pub fn run_lint(config: &LintConfig) -> Result<LintReport, String> {
    let root = &config.root;
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = LintReport::default();
    let mut registry = RegistryScan::default();
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {}: {e}", rel.display()))?;
        lint_source(rel, &text, &mut report.violations, &mut registry);
        report.files_scanned += 1;
    }
    check_registry(root, &registry, &mut report.violations)?;
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

/// How a file participates in the rules, decided from its relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FileKind {
    /// Library source: `src/**` or `crates/<c>/src/**` (minus `src/bin`).
    Library,
    /// Binary / example / bench source: panics are the caller's UX.
    BinaryLike,
    /// Integration-test source (`tests/**` anywhere): fully test code.
    TestFile,
}

pub(crate) fn classify(rel: &Path) -> Option<FileKind> {
    let s = rel.to_string_lossy().replace('\\', "/");
    if s.starts_with("target/") || s.starts_with("crates/vendor/") {
        return None; // out of scope entirely
    }
    if s.split('/').any(|part| part == "tests") {
        return Some(FileKind::TestFile);
    }
    if s.split('/')
        .any(|part| part == "examples" || part == "benches" || part == "bin")
    {
        return Some(FileKind::BinaryLike);
    }
    if s.starts_with("crates/bench/") {
        return Some(FileKind::BinaryLike); // the bench harness crate
    }
    if s.starts_with("src/") || (s.starts_with("crates/") && s.contains("/src/")) {
        return Some(FileKind::Library);
    }
    Some(FileKind::BinaryLike)
}

pub(crate) fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || (name == "vendor" && dir.ends_with("crates")) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

// --- source stripping ---------------------------------------------------

/// One source line, split into the views the rules scan.
#[derive(Debug, Default, Clone)]
pub(crate) struct StrippedLine {
    /// Code with comments *and* string/char literal contents blanked —
    /// the view token rules scan, so a rule name inside an error message
    /// can never fire.
    pub(crate) code: String,
    /// Code with comments blanked but string literals kept — the view
    /// the format-registry scan uses, so literal kind tags resolve.
    pub(crate) with_str: String,
    /// Concatenated comment text on the line — where allow annotations
    /// live.
    pub(crate) comment: String,
}

/// Strips `src` into per-line views. Handles `//` and nested `/* */`
/// comments, plain/raw/byte string literals, and char literals
/// (distinguished from lifetimes by lookahead).
pub(crate) fn strip_source(src: &str) -> Vec<StrippedLine> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        Line,
        Block(u32),
        Str { raw_hashes: Option<u32> },
        Char,
    }
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = StrippedLine::default();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if mode == Mode::Line {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::Line;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    cur.with_str.push('"');
                    mode = Mode::Str { raw_hashes: None };
                    i += 1;
                } else if let Some((skip, hashes)) = raw_string_prefix(&chars, i) {
                    // r"..."# / br#"..."# / b"..." — consume the prefix
                    // and opening quote
                    cur.code.push('"');
                    cur.with_str.push('"');
                    mode = Mode::Str { raw_hashes: hashes };
                    i += skip;
                } else if c == '\'' {
                    // char literal vs lifetime: a literal closes with '
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        cur.code.push('\'');
                        cur.with_str.push('\'');
                        mode = Mode::Char;
                        i += 1;
                    } else {
                        cur.code.push('\'');
                        cur.with_str.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    cur.with_str.push(c);
                    i += 1;
                }
            }
            Mode::Line => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' {
                        cur.with_str.push(c);
                        match chars.get(i + 1) {
                            // leave the newline for the line handler
                            Some(&'\n') | None => i += 1,
                            Some(&e) => {
                                cur.with_str.push(e);
                                i += 2;
                            }
                        }
                    } else if c == '"' {
                        cur.code.push('"');
                        cur.with_str.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        cur.with_str.push(c);
                        i += 1;
                    }
                }
                Some(n) => {
                    if c == '"' && closes_raw(&chars, i, n) {
                        cur.code.push('"');
                        cur.with_str.push('"');
                        mode = Mode::Code;
                        i += 1 + n as usize;
                    } else {
                        cur.with_str.push(c);
                        i += 1;
                    }
                }
            },
            Mode::Char => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    cur.with_str.push('\'');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// Detects a raw/byte string prefix (`r"`, `r#"`, `br##"`, `b"`) starting
/// at `i`, returning (chars to skip through the opening quote, hash count
/// — `None` marks a plain byte string).
fn raw_string_prefix(chars: &[char], i: usize) -> Option<(usize, Option<u32>)> {
    // the prefix must start an identifier, not continue one
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return None;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    if j == i {
        return None; // neither b nor r
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') || (!raw && hashes > 0) {
        return None;
    }
    let hashes = if raw { Some(hashes) } else { None };
    Some((j - i + 1, hashes))
}

/// Whether the `"` at `i` is followed by `n` hashes (closing a raw
/// string).
fn closes_raw(chars: &[char], i: usize, n: u32) -> bool {
    (0..n as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
}

// --- per-file analysis --------------------------------------------------

/// Whether `code` contains `token` as a whole word (not part of a longer
/// identifier).
pub(crate) fn contains_token(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// Per-line allow set: rule names suppressed on that line.
pub(crate) type Allows = BTreeMap<usize, Vec<Rule>>;

/// Parses `g4check: allow(rule, ...)` annotations out of comment text.
/// An annotation applies to its own line and the next line.
pub(crate) fn parse_allows(
    lines: &[StrippedLine],
    path: &Path,
    violations: &mut Vec<Violation>,
) -> Allows {
    let mut allows = Allows::new();
    for (idx, line) in lines.iter().enumerate() {
        let comment = line.comment.trim();
        let Some(pos) = comment.find("g4check:") else {
            continue;
        };
        // only an annotation when it *leads* the comment (after markers);
        // prose that merely mentions the syntax (docs, this file) is not
        if !comment[..pos]
            .chars()
            .all(|c| c == '/' || c == '!' || c == '*' || c.is_whitespace())
        {
            continue;
        }
        let rest = comment[pos + "g4check:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            violations.push(Violation {
                rule: Rule::BadAnnotation,
                path: path.to_path_buf(),
                line: idx + 1,
                message: format!("malformed annotation '{comment}'; expected 'g4check: allow(rule, ...): reason'"),
            });
            continue;
        };
        for name in args.0.split(',') {
            let name = name.trim();
            match Rule::from_name(name) {
                Some(rule) => {
                    for target in [idx, idx + 1] {
                        allows.entry(target).or_default().push(rule);
                    }
                }
                None => violations.push(Violation {
                    rule: Rule::BadAnnotation,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: format!("unknown rule '{name}' in allow annotation"),
                }),
            }
        }
    }
    allows
}

pub(crate) fn allowed(allows: &Allows, line_idx: usize, rule: Rule) -> bool {
    allows
        .get(&line_idx)
        .is_some_and(|rules| rules.contains(&rule))
}

/// Marks each line that sits inside a `#[cfg(test)]` block, tracked by
/// brace depth.
pub(crate) fn test_regions(lines: &[StrippedLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_depth: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        let mut line_is_test = region_depth.is_some();
        if line.code.contains("cfg(test") {
            pending = true;
            line_is_test = true; // the attribute belongs to the region
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && region_depth.is_none() {
                        region_depth = Some(depth);
                        pending = false;
                        line_is_test = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if region_depth.is_some_and(|d| depth < d) {
                        region_depth = None;
                        line_is_test = true; // closing brace still test
                    }
                }
                _ => {}
            }
        }
        // a cfg(test) on a braceless item (`#[cfg(test)] use ...;`)
        // shouldn't leak to the next block
        if pending && region_depth.is_none() && line.code.contains(';') {
            pending = false;
        }
        in_test[idx] = line_is_test || region_depth.is_some();
    }
    in_test
}

/// Scans one file, pushing violations and feeding the cross-file format
/// registry.
fn lint_source(
    rel: &Path,
    text: &str,
    violations: &mut Vec<Violation>,
    registry: &mut RegistryScan,
) {
    let Some(kind) = classify(rel) else {
        return;
    };
    let lines = strip_source(text);
    let allows = parse_allows(&lines, rel, violations);
    let in_test = test_regions(&lines);

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let lineno = idx + 1;
        let test_line = kind == FileKind::TestFile || in_test[idx];

        if (contains_token(code, "thread_rng") || contains_token(code, "from_entropy"))
            && !allowed(&allows, idx, Rule::ForbiddenRng)
        {
            violations.push(Violation {
                rule: Rule::ForbiddenRng,
                path: rel.to_path_buf(),
                line: lineno,
                message: "entropy-seeded randomness is forbidden; use an explicit seed \
                          (StdRng::seed_from_u64)"
                    .to_string(),
            });
        }

        if kind == FileKind::Library
            && !test_line
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed(&allows, idx, Rule::UnwrapInLib)
        {
            violations.push(Violation {
                rule: Rule::UnwrapInLib,
                path: rel.to_path_buf(),
                line: lineno,
                message: "unwrap/expect in library code; return a Result or annotate with \
                          '// g4check: allow(unwrap-in-lib): why it cannot fail'"
                    .to_string(),
            });
        }

        if test_line
            && (contains_token(code, "Instant") && code.contains("Instant::now")
                || code.contains("SystemTime::now"))
            && !allowed(&allows, idx, Rule::WallclockInTest)
        {
            violations.push(Violation {
                rule: Rule::WallclockInTest,
                path: rel.to_path_buf(),
                line: lineno,
                message: "wall-clock read in deterministic test code; assert on behaviour, \
                          not elapsed time"
                    .to_string(),
            });
        }
    }

    if is_crate_root(rel) {
        let has_forbid = lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        if !has_forbid {
            violations.push(Violation {
                rule: Rule::ForbidUnsafe,
                path: rel.to_path_buf(),
                line: 0,
                message: "crate root must declare #![forbid(unsafe_code)]".to_string(),
            });
        }
    }

    if kind != FileKind::TestFile {
        scan_registry(rel, &lines, &in_test, registry);
    }
}

/// Whether `rel` is a non-vendor crate root (`src/lib.rs` of the facade
/// or of a workspace crate).
fn is_crate_root(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    if s == "src/lib.rs" {
        return true;
    }
    let parts: Vec<&str> = s.split('/').collect();
    parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs"
}

// --- format registry ----------------------------------------------------

/// Cross-file state for the `format-registry` rule.
#[derive(Debug, Default)]
struct RegistryScan {
    /// `const NAME: &str = "value"` definitions (None = ambiguous).
    str_consts: BTreeMap<String, Option<String>>,
    /// `const NAME: u16 = n` definitions (None = ambiguous).
    u16_consts: BTreeMap<String, Option<u16>>,
    /// `BinWriter`/`BinReader` call sites in non-test code.
    calls: Vec<CallSite>,
}

#[derive(Debug)]
struct CallSite {
    path: PathBuf,
    line: usize,
    kind_expr: String,
    /// `None` for `BinWriter::new` / `BinReader::open` (implicit v1).
    version_expr: Option<String>,
    /// `BinReader` site (checked against the registry's written
    /// versions) rather than a `BinWriter` site (must match exactly).
    reader: bool,
}

/// Collects const definitions and writer call sites from one file's
/// non-test lines.
fn scan_registry(
    rel: &Path,
    lines: &[StrippedLine],
    in_test: &[bool],
    registry: &mut RegistryScan,
) {
    // join non-test lines so multi-line calls still parse; blank test
    // lines keep offsets→line-number mapping intact
    let mut joined = String::new();
    for (idx, line) in lines.iter().enumerate() {
        if !in_test[idx] {
            joined.push_str(&line.with_str);
        }
        joined.push('\n');
    }

    for (idx, line) in lines.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let ws = line.with_str.as_str();
        if let Some((name, value)) = parse_str_const(ws) {
            insert_const(&mut registry.str_consts, name, value);
        }
        if let Some((name, value)) = parse_u16_const(ws) {
            insert_const(&mut registry.u16_consts, name, value);
        }
    }

    // patterns assembled at runtime so this scanner never matches its own
    // source (the literals below are split)
    let new_pat: String = ["BinWriter", "::new("].concat();
    let ver_pat: String = ["BinWriter", "::with_version("].concat();
    let open_pat: String = ["BinReader", "::open("].concat();
    let openv_pat: String = ["BinReader", "::open_versioned("].concat();
    // (pattern, has explicit version arg, reader, index of the kind arg —
    // readers take the byte slice first)
    for (pat, has_version, reader, kind_arg) in [
        (new_pat, false, false, 0),
        (ver_pat, true, false, 0),
        (open_pat, false, true, 1),
        (openv_pat, true, true, 1),
    ] {
        let mut from = 0;
        while let Some(pos) = joined[from..].find(&pat) {
            let at = from + pos;
            let args_start = at + pat.len();
            let line = joined[..at].matches('\n').count() + 1;
            if let Some(args) = balanced_args(&joined[args_start..]) {
                let parts = split_top_level(&args);
                let kind_expr = parts.get(kind_arg).cloned().unwrap_or_default();
                let version_expr = if has_version {
                    parts.get(kind_arg + 1).cloned()
                } else {
                    None
                };
                registry.calls.push(CallSite {
                    path: rel.to_path_buf(),
                    line,
                    kind_expr,
                    version_expr,
                    reader,
                });
            }
            from = args_start;
        }
    }
}

fn insert_const<T: PartialEq>(map: &mut BTreeMap<String, Option<T>>, name: String, value: T) {
    match map.get(&name) {
        Some(Some(existing)) if *existing == value => {}
        Some(_) => {
            map.insert(name, None); // same name, different value: ambiguous
        }
        None => {
            map.insert(name, Some(value));
        }
    }
}

/// Parses `const NAME: &str = "value";` (with optional `pub`) from one
/// stripped line.
fn parse_str_const(ws: &str) -> Option<(String, String)> {
    let pos = find_const(ws)?;
    let rest = &ws[pos..];
    let (name, rest) = rest.split_once(':')?;
    let name = name.trim();
    if !is_ident(name) {
        return None;
    }
    let (ty, rest) = rest.split_once('=')?;
    if !ty.trim().ends_with("str") {
        return None;
    }
    let rest = rest.trim_start();
    let value = rest.strip_prefix('"')?.split_once('"')?.0;
    Some((name.to_string(), value.to_string()))
}

/// Parses `const NAME: u16 = n;` (with optional `pub`) from one stripped
/// line.
fn parse_u16_const(ws: &str) -> Option<(String, u16)> {
    let pos = find_const(ws)?;
    let rest = &ws[pos..];
    let (name, rest) = rest.split_once(':')?;
    let name = name.trim();
    if !is_ident(name) {
        return None;
    }
    let (ty, rest) = rest.split_once('=')?;
    if ty.trim() != "u16" {
        return None;
    }
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    digits
        .replace('_', "")
        .parse()
        .ok()
        .map(|v| (name.to_string(), v))
}

/// Returns the offset just past a `const ` keyword on the line, if any.
fn find_const(ws: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = ws[from..].find("const ") {
        let at = from + pos;
        let before_ok = at == 0
            || !ws[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return Some(at + "const ".len());
        }
        from = at + "const ".len();
    }
    None
}

fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Captures the argument text of a call up to its matching close paren.
fn balanced_args(s: &str) -> Option<String> {
    let mut depth = 1;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(s[..i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits call arguments on top-level commas.
fn split_top_level(args: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for c in args.chars() {
        match c {
            '(' | '[' | '{' => {
                depth += 1;
                cur.push(c);
            }
            ')' | ']' | '}' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts.iter().map(|p| p.trim().to_string()).collect()
}

/// Resolves a kind expression (string literal or const name) to its
/// value.
fn resolve_kind(expr: &str, consts: &BTreeMap<String, Option<String>>) -> Option<String> {
    let expr = expr.trim();
    if let Some(stripped) = expr.strip_prefix('"') {
        return stripped.split_once('"').map(|(v, _)| v.to_string());
    }
    let name = expr.rsplit("::").next().unwrap_or(expr);
    consts.get(name).cloned().flatten()
}

/// Resolves a version expression (integer literal or const name).
fn resolve_version(expr: &str, consts: &BTreeMap<String, Option<u16>>) -> Option<u16> {
    let expr = expr.trim();
    if let Ok(v) = expr.parse::<u16>() {
        return Some(v);
    }
    let name = expr.rsplit("::").next().unwrap_or(expr);
    consts.get(name).cloned().flatten()
}

/// Cross-checks the collected call sites against the `FORMATS` table in
/// `gnn4ip-tensor` and the README spec table.
fn check_registry(
    root: &Path,
    registry: &RegistryScan,
    violations: &mut Vec<Violation>,
) -> Result<(), String> {
    let serialize_rel = PathBuf::from("crates/tensor/src/serialize.rs");
    let serialize_path = root.join(&serialize_rel);
    let (formats, formats_line) = match std::fs::read_to_string(&serialize_path) {
        Ok(text) => parse_formats_table(&text),
        Err(e) => {
            violations.push(Violation {
                rule: Rule::FormatRegistry,
                path: serialize_rel.clone(),
                line: 0,
                message: format!("cannot read the FORMATS registry source: {e}"),
            });
            return Ok(());
        }
    };
    if formats.is_empty() {
        violations.push(Violation {
            rule: Rule::FormatRegistry,
            path: serialize_rel.clone(),
            line: formats_line,
            message: "no FORMATS registry table found; declare \
                      `pub const FORMATS: &[(&str, u16)]` listing every artifact kind"
                .to_string(),
        });
        return Ok(());
    }

    // 1. every writer/reader call site resolves and appears in FORMATS
    let mut written: Vec<(String, u16)> = Vec::new();
    for call in &registry.calls {
        let kind = resolve_kind(&call.kind_expr, &registry.str_consts);
        let version = match &call.version_expr {
            Some(expr) => resolve_version(expr, &registry.u16_consts),
            None => Some(1), // new/open default to the baseline version
        };
        let (Some(kind), Some(version)) = (kind, version) else {
            violations.push(Violation {
                rule: Rule::FormatRegistry,
                path: call.path.clone(),
                line: call.line,
                message: format!(
                    "cannot resolve artifact kind/version from `{}`{}; use a string literal \
                     or a workspace-unique const",
                    call.kind_expr,
                    call.version_expr
                        .as_deref()
                        .map(|v| format!(" / `{v}`"))
                        .unwrap_or_default()
                ),
            });
            continue;
        };
        if call.reader {
            // a reader accepts versions 1..=max; every registered
            // version of the kind it names must fall in that window, or
            // the reader rejects artifacts the workspace produces
            let registered: Vec<u16> = formats
                .iter()
                .filter(|(k, _)| *k == kind)
                .map(|(_, v)| *v)
                .collect();
            if registered.is_empty() {
                violations.push(Violation {
                    rule: Rule::FormatRegistry,
                    path: call.path.clone(),
                    line: call.line,
                    message: format!(
                        "reader accepts artifact kind '{kind}' which is not in the FORMATS \
                         registry (crates/tensor/src/serialize.rs); register it there and in \
                         the README spec table"
                    ),
                });
            } else if let Some(newer) = registered.iter().find(|v| **v > version) {
                violations.push(Violation {
                    rule: Rule::FormatRegistry,
                    path: call.path.clone(),
                    line: call.line,
                    message: format!(
                        "reader accepts kind '{kind}' up to v{version} but FORMATS registers \
                         v{newer}; raise the reader's max_version or it rejects current \
                         artifacts"
                    ),
                });
            }
            continue; // readers don't count toward the stale-row check
        }
        if !formats.iter().any(|(k, v)| *k == kind && *v == version) {
            violations.push(Violation {
                rule: Rule::FormatRegistry,
                path: call.path.clone(),
                line: call.line,
                message: format!(
                    "artifact kind '{kind}' v{version} is not in the FORMATS registry \
                     (crates/tensor/src/serialize.rs); register it there and in the README \
                     spec table"
                ),
            });
        }
        written.push((kind, version));
    }

    // 2. no stale registry rows: every FORMATS entry is written somewhere
    for (kind, version) in &formats {
        if !written.iter().any(|(k, v)| k == kind && v == version) {
            violations.push(Violation {
                rule: Rule::FormatRegistry,
                path: serialize_rel.clone(),
                line: formats_line,
                message: format!(
                    "FORMATS registers kind '{kind}' v{version} but no non-test writer \
                     produces it; remove the stale row or restore the writer"
                ),
            });
        }
    }

    // 3. the README spec table documents every registered pair
    let readme_rel = PathBuf::from("README.md");
    let readme = std::fs::read_to_string(root.join(&readme_rel)).unwrap_or_default();
    for (kind, version) in &formats {
        let documented = readme.lines().any(|l| {
            l.trim_start().starts_with('|')
                && l.contains(&format!("`{kind}`"))
                && l.split('|')
                    .any(|cell| cell.trim() == format!("v{version}"))
        });
        if !documented {
            violations.push(Violation {
                rule: Rule::FormatRegistry,
                path: readme_rel.clone(),
                line: 0,
                message: format!(
                    "README spec table is missing a row for artifact kind `{kind}` v{version}"
                ),
            });
        }
    }
    Ok(())
}

/// Extracts `("kind", version)` pairs from the `FORMATS` declaration,
/// returning them with the declaration's 1-based line.
fn parse_formats_table(text: &str) -> (Vec<(String, u16)>, usize) {
    let lines = strip_source(text);
    let joined: String = lines
        .iter()
        .flat_map(|l| [l.with_str.as_str(), "\n"])
        .collect();
    let Some(start) = joined.find("FORMATS:") else {
        return (Vec::new(), 0);
    };
    let line = joined[..start].matches('\n').count() + 1;
    let Some(end) = joined[start..].find(';') else {
        return (Vec::new(), line);
    };
    let body = &joined[start..start + end];
    let mut pairs = Vec::new();
    let mut rest = body;
    while let Some(q) = rest.find('(') {
        let after = &rest[q + 1..];
        let Some((kind, tail)) = after
            .trim_start()
            .strip_prefix('"')
            .and_then(|r| r.split_once('"'))
        else {
            rest = after;
            continue;
        };
        let digits: String = tail
            .chars()
            .skip_while(|c| *c == ',' || c.is_whitespace())
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(v) = digits.parse::<u16>() {
            pairs.push((kind.to_string(), v));
        }
        rest = tail;
    }
    (pairs, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_and_strings() {
        let src = "let a = \"thread_rng\"; // thread_rng in comment\nlet b = 1; /* block\nstill block */ let c = 2;";
        let lines = strip_source(src);
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].code.contains("thread_rng"));
        assert!(lines[0].with_str.contains("thread_rng"));
        assert!(lines[0].comment.contains("thread_rng"));
        assert!(lines[1].code.contains("let b"));
        assert!(!lines[2].code.contains("still block"));
        assert!(lines[2].code.contains("let c"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_chars() {
        let src = "let r = r#\"unwrap() \"quoted\" inside\"#;\nlet c = '\\''; let l: &'static str = \"x\";";
        let lines = strip_source(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].with_str.contains("unwrap()"));
        // the lifetime must not open a char literal and swallow the rest
        assert!(lines[1].code.contains("static"));
    }

    #[test]
    fn test_regions_track_cfg_test_mods() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}";
        let lines = strip_source(src);
        let marks = test_regions(&lines);
        assert_eq!(marks, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn token_matching_respects_word_boundaries() {
        assert!(contains_token("thread_rng()", "thread_rng"));
        assert!(!contains_token("my_thread_rng()", "thread_rng"));
        assert!(!contains_token("thread_rng_alt()", "thread_rng"));
    }

    #[test]
    fn const_parsers_extract_pairs() {
        assert_eq!(
            parse_str_const("pub const K: &str = \"gnn4ip-x\";"),
            Some(("K".to_string(), "gnn4ip-x".to_string()))
        );
        assert_eq!(
            parse_u16_const("const V: u16 = 2;"),
            Some(("V".to_string(), 2))
        );
        assert_eq!(parse_u16_const("const V: u32 = 2;"), None);
    }

    #[test]
    fn formats_table_parses() {
        let src = "pub const FORMATS: &[(&str, u16)] = &[\n    (\"a-kind\", 1),\n    (\"b-kind\", 2),\n];";
        let (pairs, line) = parse_formats_table(src);
        assert_eq!(line, 1);
        assert_eq!(
            pairs,
            vec![("a-kind".to_string(), 1), ("b-kind".to_string(), 2)]
        );
    }
}
