//! Step-level models of the workspace's concurrent algorithms, verified
//! by [`sched`](crate::sched).
//!
//! [`PublicationModel`] mirrors `gnn4ip_core::PublicationSlot` — the
//! epoch-stamped snapshot publication slot that standardizes the
//! writer→readers handoff in the audit serving path — one atomic action
//! per [`Program::step`]:
//!
//! ```text
//! publish:                          load:                load_if_newer(seen):
//!   1. lock slot mutex                1. lock               1. e := epoch.load
//!   2. inner.epoch += 1               2. read (epoch,          (e <= seen → miss,
//!   3. inner.value := new                 value) pair           done without locking)
//!   4. unlock                         3. unlock             2..4. as load
//!   5. epoch.fetch_max(new)
//! ```
//!
//! The invariants asserted along **every** explored interleaving:
//!
//! - **No torn read**: a reader never observes an epoch paired with
//!   another epoch's value (steps 2+3 of publish are invisible because
//!   the mutex covers them — remove the mutex and the checker proves the
//!   tear, see [`PublicationModel::guarded`]).
//! - **Per-reader epoch monotonicity**: successive loads by one reader
//!   never go backwards.
//! - **Publication visibility**: a load that began after the reader saw
//!   `epoch.load() == e` returns a snapshot stamped `>= e` — the atomic
//!   is only advanced *after* the value is in place, and `fetch_max`
//!   keeps concurrent writers from regressing it.
//! - **Writer progress / no deadlock**: every schedule completes; the
//!   explorer reports any state where all unfinished threads block.

use crate::sched::{Explorer, Program, Step};

/// A bounded writer/reader workload over the publication-slot algorithm.
#[derive(Debug, Clone, Copy)]
pub struct PublicationModel {
    /// Concurrent writer threads.
    pub writers: usize,
    /// Publishes each writer performs.
    pub publishes_per_writer: u64,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Loads each reader performs.
    pub loads_per_reader: usize,
    /// Readers go through the `load_if_newer` fast path (an unlocked
    /// atomic read that may miss) instead of plain `load`.
    pub use_if_newer: bool,
    /// `true` models the real algorithm (pair access under the mutex);
    /// `false` deliberately removes the mutex so the checker must find
    /// the torn read — the seeded bug that keeps the checker honest.
    pub guarded: bool,
}

impl PublicationModel {
    /// The real algorithm with one writer, `readers` readers, one
    /// publish and one load each.
    pub fn guarded(writers: usize, readers: usize) -> Self {
        Self {
            writers,
            publishes_per_writer: 1,
            readers,
            loads_per_reader: 1,
            use_if_newer: false,
            guarded: true,
        }
    }

    /// The mutex removed: pair writes and pair reads become separately
    /// schedulable steps, so some interleaving tears.
    pub fn unguarded() -> Self {
        Self {
            writers: 1,
            publishes_per_writer: 1,
            readers: 1,
            loads_per_reader: 1,
            use_if_newer: false,
            guarded: false,
        }
    }

    fn total_publishes(&self) -> u64 {
        self.writers as u64 * self.publishes_per_writer
    }
}

/// Shared + thread-local state of [`PublicationModel`], cloned at every
/// scheduler branch.
#[derive(Debug, Clone)]
pub struct PublicationState {
    /// The `AtomicU64` epoch — advanced by `fetch_max` after the slot
    /// write completes.
    epoch_atomic: u64,
    /// The slot mutex owner (`None` = free). Unused when unguarded.
    lock: Option<usize>,
    /// The epoch half of the mutex-protected pair.
    slot_epoch: u64,
    /// The value half. In the real slot this is the `Arc<T>` payload;
    /// here it is the epoch the payload was built for, so
    /// `slot_epoch != slot_value` *is* a torn pair.
    slot_value: u64,
    writers: Vec<WriterState>,
    readers: Vec<ReaderState>,
}

#[derive(Debug, Clone, Default)]
struct WriterState {
    pc: usize,
    /// Epoch claimed under the lock for the in-flight publish.
    claimed: u64,
    published: u64,
}

#[derive(Debug, Clone, Default)]
struct ReaderState {
    pc: usize,
    loads_done: usize,
    /// Newest epoch this reader has returned — monotonicity baseline.
    last_epoch: u64,
    /// `epoch.load()` observed at the head of the in-flight
    /// `load_if_newer`.
    seen_atomic: u64,
    /// First half of an unguarded pair read.
    tmp_epoch: u64,
}

impl Program for PublicationModel {
    type State = PublicationState;

    fn init(&self) -> PublicationState {
        PublicationState {
            epoch_atomic: 0,
            lock: None,
            slot_epoch: 0,
            slot_value: 0,
            writers: vec![WriterState::default(); self.writers],
            readers: vec![ReaderState::default(); self.readers],
        }
    }

    fn threads(&self) -> usize {
        self.writers + self.readers
    }

    fn step(&self, state: &mut PublicationState, tid: usize) -> Result<Step, String> {
        if tid < self.writers {
            self.writer_step(state, tid)
        } else {
            self.reader_step(state, tid)
        }
    }

    fn check_final(&self, state: &PublicationState) -> Result<(), String> {
        let total = self.total_publishes();
        if state.slot_epoch != state.slot_value {
            return Err(format!(
                "slot left torn: epoch {} vs value {}",
                state.slot_epoch, state.slot_value
            ));
        }
        if self.guarded && state.lock.is_some() {
            return Err("slot mutex left held".to_string());
        }
        if state.slot_epoch != total || state.epoch_atomic != total {
            return Err(format!(
                "writer progress violated: {} publishes completed but slot epoch is {} \
                 and atomic epoch is {}",
                total, state.slot_epoch, state.epoch_atomic
            ));
        }
        Ok(())
    }
}

impl PublicationModel {
    fn writer_step(&self, state: &mut PublicationState, tid: usize) -> Result<Step, String> {
        let pc = state.writers[tid].pc;
        if self.guarded {
            match pc {
                // 1. lock
                0 => {
                    if state.lock.is_some() {
                        return Ok(Step::Blocked);
                    }
                    state.lock = Some(tid);
                    state.writers[tid].pc = 1;
                    Ok(Step::Progress)
                }
                // 2. inner.epoch += 1 (first half of the pair write)
                1 => {
                    let claimed = state.slot_epoch + 1;
                    state.writers[tid].claimed = claimed;
                    state.slot_epoch = claimed;
                    state.writers[tid].pc = 2;
                    Ok(Step::Progress)
                }
                // 3. inner.value := new (second half)
                2 => {
                    state.slot_value = state.writers[tid].claimed;
                    state.writers[tid].pc = 3;
                    Ok(Step::Progress)
                }
                // 4. unlock
                3 => {
                    state.lock = None;
                    state.writers[tid].pc = 4;
                    Ok(Step::Progress)
                }
                // 5. epoch.fetch_max(new) — publication completes
                _ => {
                    let claimed = state.writers[tid].claimed;
                    state.epoch_atomic = state.epoch_atomic.max(claimed);
                    self.writer_retire(state, tid)
                }
            }
        } else {
            match pc {
                0 => {
                    let claimed = state.slot_epoch + 1;
                    state.writers[tid].claimed = claimed;
                    state.slot_epoch = claimed;
                    state.writers[tid].pc = 1;
                    Ok(Step::Progress)
                }
                1 => {
                    state.slot_value = state.writers[tid].claimed;
                    state.writers[tid].pc = 2;
                    Ok(Step::Progress)
                }
                _ => {
                    let claimed = state.writers[tid].claimed;
                    state.epoch_atomic = state.epoch_atomic.max(claimed);
                    self.writer_retire(state, tid)
                }
            }
        }
    }

    fn writer_retire(&self, state: &mut PublicationState, tid: usize) -> Result<Step, String> {
        let w = &mut state.writers[tid];
        w.published += 1;
        w.pc = 0;
        Ok(if w.published == self.publishes_per_writer {
            Step::Done
        } else {
            Step::Progress
        })
    }

    fn reader_step(&self, state: &mut PublicationState, tid: usize) -> Result<Step, String> {
        let r = tid - self.writers;
        let pc = state.readers[r].pc;
        if self.guarded {
            match (pc, self.use_if_newer) {
                // 1. the load_if_newer fast path: one atomic load, no lock
                (0, true) => {
                    let seen = state.epoch_atomic;
                    if seen <= state.readers[r].last_epoch {
                        // miss: the caller keeps its current snapshot.
                        // Legal by construction — the atomic only advances
                        // after a publish completes, so nothing newer was
                        // ready when we looked.
                        return self.reader_retire(state, r);
                    }
                    state.readers[r].seen_atomic = seen;
                    state.readers[r].pc = 1;
                    Ok(Step::Progress)
                }
                (0, false) => {
                    state.readers[r].seen_atomic = 0;
                    state.readers[r].pc = 1;
                    Ok(Step::Progress)
                }
                // 2. lock
                (1, _) => {
                    if state.lock.is_some() {
                        return Ok(Step::Blocked);
                    }
                    state.lock = Some(tid);
                    state.readers[r].pc = 2;
                    Ok(Step::Progress)
                }
                // 3. read the pair under the lock, assert, unlock
                (2, _) => {
                    let (epoch, value) = (state.slot_epoch, state.slot_value);
                    self.observe(state, r, epoch, value)?;
                    state.lock = None;
                    self.reader_retire(state, r)
                }
                (_, _) => Err(format!("reader {r} reached impossible pc {pc}")),
            }
        } else {
            match pc {
                // unguarded: the two halves of the pair read are separate
                // steps a writer can land between
                0 => {
                    state.readers[r].tmp_epoch = state.slot_epoch;
                    state.readers[r].pc = 1;
                    Ok(Step::Progress)
                }
                _ => {
                    let epoch = state.readers[r].tmp_epoch;
                    let value = state.slot_value;
                    self.observe(state, r, epoch, value)?;
                    self.reader_retire(state, r)
                }
            }
        }
    }

    /// The invariants every completed load asserts.
    fn observe(
        &self,
        state: &mut PublicationState,
        r: usize,
        epoch: u64,
        value: u64,
    ) -> Result<(), String> {
        if epoch != value {
            return Err(format!(
                "torn read: reader {r} observed epoch {epoch} with value {value}"
            ));
        }
        let reader = &mut state.readers[r];
        if epoch < reader.last_epoch {
            return Err(format!(
                "epoch regression: reader {r} went from {} back to {epoch}",
                reader.last_epoch
            ));
        }
        if epoch < reader.seen_atomic {
            return Err(format!(
                "stale read: reader {r} saw completed publication {} but loaded epoch {epoch}",
                reader.seen_atomic
            ));
        }
        reader.last_epoch = epoch;
        Ok(())
    }

    fn reader_retire(&self, state: &mut PublicationState, r: usize) -> Result<Step, String> {
        let reader = &mut state.readers[r];
        reader.loads_done += 1;
        reader.pc = 0;
        reader.seen_atomic = 0;
        Ok(if reader.loads_done == self.loads_per_reader {
            Step::Done
        } else {
            Step::Progress
        })
    }
}

// --- the CI suite -------------------------------------------------------

/// One exploration in the publication-slot suite.
#[derive(Debug, Clone)]
pub struct SchedRun {
    /// Config label.
    pub name: String,
    /// Completed schedules explored (exhaustive).
    pub schedules: usize,
    /// Deepest schedule length.
    pub deepest: usize,
}

/// The aggregate result [`verify_publication_slot`] reports.
#[derive(Debug, Clone)]
pub struct SchedSummary {
    /// Every exploration that ran.
    pub runs: Vec<SchedRun>,
    /// Sum of schedules across the passing (guarded) configs.
    pub total_schedules: usize,
}

/// The interleaving gate `ci.sh --stage analysis` runs: explores the
/// publication-slot model across writer/reader workloads (every guarded
/// config must pass exhaustively) and then checks the checker by
/// confirming the unguarded variant's torn read *is* found.
///
/// # Errors
///
/// Returns a description of the first violated invariant, truncated
/// exploration, or — worst of all — a seeded bug the checker missed.
pub fn verify_publication_slot() -> Result<SchedSummary, String> {
    let explorer = Explorer::exhaustive();
    let configs: &[(&str, PublicationModel)] = &[
        ("1w-2r load", PublicationModel::guarded(1, 2)),
        ("2w-1r load", PublicationModel::guarded(2, 1)),
        (
            "1w-1r x2 loads",
            PublicationModel {
                writers: 1,
                publishes_per_writer: 2,
                readers: 1,
                loads_per_reader: 2,
                use_if_newer: false,
                guarded: true,
            },
        ),
        (
            "1w-2r if-newer",
            PublicationModel {
                writers: 1,
                publishes_per_writer: 1,
                readers: 2,
                loads_per_reader: 1,
                use_if_newer: true,
                guarded: true,
            },
        ),
        (
            "1w x2-1r if-newer x2",
            PublicationModel {
                writers: 1,
                publishes_per_writer: 2,
                readers: 1,
                loads_per_reader: 2,
                use_if_newer: true,
                guarded: true,
            },
        ),
    ];

    let mut summary = SchedSummary {
        runs: Vec::new(),
        total_schedules: 0,
    };
    for (name, model) in configs {
        let report = explorer.explore(model);
        if let Some(violation) = &report.violation {
            return Err(format!("config '{name}': {violation}"));
        }
        if report.truncated {
            return Err(format!(
                "config '{name}': exploration truncated at {} schedules — shrink the model \
                 or raise the cap",
                report.schedules
            ));
        }
        summary.total_schedules += report.schedules;
        summary.runs.push(SchedRun {
            name: (*name).to_string(),
            schedules: report.schedules,
            deepest: report.deepest,
        });
    }

    // the checker must catch the seeded bug, or its green means nothing
    let buggy = explorer.explore(&PublicationModel::unguarded());
    match &buggy.violation {
        Some(v) if v.message.contains("torn read") => {}
        Some(v) => return Err(format!("unguarded model failed for the wrong reason: {v}")),
        None => {
            return Err("checker self-test failed: the seeded torn-read bug in the \
                        unguarded model was not found"
                .to_string())
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_model_passes_exhaustively() {
        let report = Explorer::exhaustive().explore(&PublicationModel::guarded(1, 2));
        assert!(report.passed(), "{:?}", report.violation);
        assert!(report.schedules > 0);
    }

    #[test]
    fn unguarded_model_tears() {
        let report = Explorer::exhaustive().explore(&PublicationModel::unguarded());
        let violation = report.violation.expect("torn read must be found");
        assert!(violation.message.contains("torn read"), "{violation}");
    }

    #[test]
    fn suite_passes_and_is_thorough() {
        let summary = verify_publication_slot().expect("suite passes");
        assert!(
            summary.total_schedules >= 1000,
            "only {} schedules explored — the acceptance gate requires >= 1000",
            summary.total_schedules
        );
        assert!(summary.runs.len() >= 5);
    }

    #[test]
    fn two_writers_never_regress_the_epoch() {
        // fetch_max is what keeps a slow writer's late store from
        // regressing the atomic; the model with 2 writers exercises the
        // window where writer A's store lands after writer B's
        let report = Explorer::exhaustive().explore(&PublicationModel::guarded(2, 1));
        assert!(report.passed(), "{:?}", report.violation);
    }

    #[test]
    fn if_newer_misses_are_legal_and_checked() {
        let model = PublicationModel {
            writers: 1,
            publishes_per_writer: 1,
            readers: 2,
            loads_per_reader: 2,
            use_if_newer: true,
            guarded: true,
        };
        let report = Explorer::exhaustive().explore(&model);
        assert!(report.passed(), "{:?}", report.violation);
    }
}
