//! Step-level models of the workspace's concurrent algorithms, verified
//! by [`sched`](crate::sched).
//!
//! [`PublicationModel`] mirrors `gnn4ip_core::PublicationSlot` — the
//! epoch-stamped snapshot publication slot that standardizes the
//! writer→readers handoff in the audit serving path — one atomic action
//! per [`Program::step`]:
//!
//! ```text
//! publish:                          load:                load_if_newer(seen):
//!   1. lock slot mutex                1. lock               1. e := epoch.load
//!   2. inner.epoch += 1               2. read (epoch,          (e <= seen → miss,
//!   3. inner.value := new                 value) pair           done without locking)
//!   4. unlock                         3. unlock             2..4. as load
//!   5. epoch.fetch_max(new)
//! ```
//!
//! The invariants asserted along **every** explored interleaving:
//!
//! - **No torn read**: a reader never observes an epoch paired with
//!   another epoch's value (steps 2+3 of publish are invisible because
//!   the mutex covers them — remove the mutex and the checker proves the
//!   tear, see [`PublicationModel::guarded`]).
//! - **Per-reader epoch monotonicity**: successive loads by one reader
//!   never go backwards.
//! - **Publication visibility**: a load that began after the reader saw
//!   `epoch.load() == e` returns a snapshot stamped `>= e` — the atomic
//!   is only advanced *after* the value is in place, and `fetch_max`
//!   keeps concurrent writers from regressing it.
//! - **Writer progress / no deadlock**: every schedule completes; the
//!   explorer reports any state where all unfinished threads block.
//!
//! [`BoundedQueueModel`] mirrors `gnn4ip_core::BoundedQueue` — the
//! blocking MPMC queue that backpressures the `gnn4ip serve` request
//! loop. Its mutex discipline is the one already proven above (every
//! queue access happens under the lock), so each critical section is
//! modeled as a single atomic step and the modeled concurrency is the
//! **condvar protocol**: atomically joining a waitset when the predicate
//! fails, re-checking after every wake, `notify_one` per push/pop,
//! `notify_all` on close. The invariants along every interleaving:
//!
//! - **Capacity**: occupancy never exceeds the bound (backpressure is
//!   real, not advisory).
//! - **FIFO, exactly once**: items pop in push order, none duplicated or
//!   lost — `popped + queued == pushed` at every final state.
//! - **Close drains**: after `close()`, consumers pop every pending item
//!   before any sees `None`, producers get their item back, and — the
//!   part that needs `notify_all` — **every** sleeper wakes. The seeded
//!   bug ([`BoundedQueueModel::lost_wakeup`]) downgrades close to
//!   `notify_one`, and the checker must find the stranded-consumer
//!   deadlock or its green means nothing.

use std::collections::VecDeque;

use crate::sched::{Explorer, Program, Step};

/// A bounded writer/reader workload over the publication-slot algorithm.
#[derive(Debug, Clone, Copy)]
pub struct PublicationModel {
    /// Concurrent writer threads.
    pub writers: usize,
    /// Publishes each writer performs.
    pub publishes_per_writer: u64,
    /// Concurrent reader threads.
    pub readers: usize,
    /// Loads each reader performs.
    pub loads_per_reader: usize,
    /// Readers go through the `load_if_newer` fast path (an unlocked
    /// atomic read that may miss) instead of plain `load`.
    pub use_if_newer: bool,
    /// `true` models the real algorithm (pair access under the mutex);
    /// `false` deliberately removes the mutex so the checker must find
    /// the torn read — the seeded bug that keeps the checker honest.
    pub guarded: bool,
}

impl PublicationModel {
    /// The real algorithm with one writer, `readers` readers, one
    /// publish and one load each.
    pub fn guarded(writers: usize, readers: usize) -> Self {
        Self {
            writers,
            publishes_per_writer: 1,
            readers,
            loads_per_reader: 1,
            use_if_newer: false,
            guarded: true,
        }
    }

    /// The mutex removed: pair writes and pair reads become separately
    /// schedulable steps, so some interleaving tears.
    pub fn unguarded() -> Self {
        Self {
            writers: 1,
            publishes_per_writer: 1,
            readers: 1,
            loads_per_reader: 1,
            use_if_newer: false,
            guarded: false,
        }
    }

    fn total_publishes(&self) -> u64 {
        self.writers as u64 * self.publishes_per_writer
    }
}

/// Shared + thread-local state of [`PublicationModel`], cloned at every
/// scheduler branch.
#[derive(Debug, Clone)]
pub struct PublicationState {
    /// The `AtomicU64` epoch — advanced by `fetch_max` after the slot
    /// write completes.
    epoch_atomic: u64,
    /// The slot mutex owner (`None` = free). Unused when unguarded.
    lock: Option<usize>,
    /// The epoch half of the mutex-protected pair.
    slot_epoch: u64,
    /// The value half. In the real slot this is the `Arc<T>` payload;
    /// here it is the epoch the payload was built for, so
    /// `slot_epoch != slot_value` *is* a torn pair.
    slot_value: u64,
    writers: Vec<WriterState>,
    readers: Vec<ReaderState>,
}

#[derive(Debug, Clone, Default)]
struct WriterState {
    pc: usize,
    /// Epoch claimed under the lock for the in-flight publish.
    claimed: u64,
    published: u64,
}

#[derive(Debug, Clone, Default)]
struct ReaderState {
    pc: usize,
    loads_done: usize,
    /// Newest epoch this reader has returned — monotonicity baseline.
    last_epoch: u64,
    /// `epoch.load()` observed at the head of the in-flight
    /// `load_if_newer`.
    seen_atomic: u64,
    /// First half of an unguarded pair read.
    tmp_epoch: u64,
}

impl Program for PublicationModel {
    type State = PublicationState;

    fn init(&self) -> PublicationState {
        PublicationState {
            epoch_atomic: 0,
            lock: None,
            slot_epoch: 0,
            slot_value: 0,
            writers: vec![WriterState::default(); self.writers],
            readers: vec![ReaderState::default(); self.readers],
        }
    }

    fn threads(&self) -> usize {
        self.writers + self.readers
    }

    fn step(&self, state: &mut PublicationState, tid: usize) -> Result<Step, String> {
        if tid < self.writers {
            self.writer_step(state, tid)
        } else {
            self.reader_step(state, tid)
        }
    }

    fn check_final(&self, state: &PublicationState) -> Result<(), String> {
        let total = self.total_publishes();
        if state.slot_epoch != state.slot_value {
            return Err(format!(
                "slot left torn: epoch {} vs value {}",
                state.slot_epoch, state.slot_value
            ));
        }
        if self.guarded && state.lock.is_some() {
            return Err("slot mutex left held".to_string());
        }
        if state.slot_epoch != total || state.epoch_atomic != total {
            return Err(format!(
                "writer progress violated: {} publishes completed but slot epoch is {} \
                 and atomic epoch is {}",
                total, state.slot_epoch, state.epoch_atomic
            ));
        }
        Ok(())
    }
}

impl PublicationModel {
    fn writer_step(&self, state: &mut PublicationState, tid: usize) -> Result<Step, String> {
        let pc = state.writers[tid].pc;
        if self.guarded {
            match pc {
                // 1. lock
                0 => {
                    if state.lock.is_some() {
                        return Ok(Step::Blocked);
                    }
                    state.lock = Some(tid);
                    state.writers[tid].pc = 1;
                    Ok(Step::Progress)
                }
                // 2. inner.epoch += 1 (first half of the pair write)
                1 => {
                    let claimed = state.slot_epoch + 1;
                    state.writers[tid].claimed = claimed;
                    state.slot_epoch = claimed;
                    state.writers[tid].pc = 2;
                    Ok(Step::Progress)
                }
                // 3. inner.value := new (second half)
                2 => {
                    state.slot_value = state.writers[tid].claimed;
                    state.writers[tid].pc = 3;
                    Ok(Step::Progress)
                }
                // 4. unlock
                3 => {
                    state.lock = None;
                    state.writers[tid].pc = 4;
                    Ok(Step::Progress)
                }
                // 5. epoch.fetch_max(new) — publication completes
                _ => {
                    let claimed = state.writers[tid].claimed;
                    state.epoch_atomic = state.epoch_atomic.max(claimed);
                    self.writer_retire(state, tid)
                }
            }
        } else {
            match pc {
                0 => {
                    let claimed = state.slot_epoch + 1;
                    state.writers[tid].claimed = claimed;
                    state.slot_epoch = claimed;
                    state.writers[tid].pc = 1;
                    Ok(Step::Progress)
                }
                1 => {
                    state.slot_value = state.writers[tid].claimed;
                    state.writers[tid].pc = 2;
                    Ok(Step::Progress)
                }
                _ => {
                    let claimed = state.writers[tid].claimed;
                    state.epoch_atomic = state.epoch_atomic.max(claimed);
                    self.writer_retire(state, tid)
                }
            }
        }
    }

    fn writer_retire(&self, state: &mut PublicationState, tid: usize) -> Result<Step, String> {
        let w = &mut state.writers[tid];
        w.published += 1;
        w.pc = 0;
        Ok(if w.published == self.publishes_per_writer {
            Step::Done
        } else {
            Step::Progress
        })
    }

    fn reader_step(&self, state: &mut PublicationState, tid: usize) -> Result<Step, String> {
        let r = tid - self.writers;
        let pc = state.readers[r].pc;
        if self.guarded {
            match (pc, self.use_if_newer) {
                // 1. the load_if_newer fast path: one atomic load, no lock
                (0, true) => {
                    let seen = state.epoch_atomic;
                    if seen <= state.readers[r].last_epoch {
                        // miss: the caller keeps its current snapshot.
                        // Legal by construction — the atomic only advances
                        // after a publish completes, so nothing newer was
                        // ready when we looked.
                        return self.reader_retire(state, r);
                    }
                    state.readers[r].seen_atomic = seen;
                    state.readers[r].pc = 1;
                    Ok(Step::Progress)
                }
                (0, false) => {
                    state.readers[r].seen_atomic = 0;
                    state.readers[r].pc = 1;
                    Ok(Step::Progress)
                }
                // 2. lock
                (1, _) => {
                    if state.lock.is_some() {
                        return Ok(Step::Blocked);
                    }
                    state.lock = Some(tid);
                    state.readers[r].pc = 2;
                    Ok(Step::Progress)
                }
                // 3. read the pair under the lock, assert, unlock
                (2, _) => {
                    let (epoch, value) = (state.slot_epoch, state.slot_value);
                    self.observe(state, r, epoch, value)?;
                    state.lock = None;
                    self.reader_retire(state, r)
                }
                (_, _) => Err(format!("reader {r} reached impossible pc {pc}")),
            }
        } else {
            match pc {
                // unguarded: the two halves of the pair read are separate
                // steps a writer can land between
                0 => {
                    state.readers[r].tmp_epoch = state.slot_epoch;
                    state.readers[r].pc = 1;
                    Ok(Step::Progress)
                }
                _ => {
                    let epoch = state.readers[r].tmp_epoch;
                    let value = state.slot_value;
                    self.observe(state, r, epoch, value)?;
                    self.reader_retire(state, r)
                }
            }
        }
    }

    /// The invariants every completed load asserts.
    fn observe(
        &self,
        state: &mut PublicationState,
        r: usize,
        epoch: u64,
        value: u64,
    ) -> Result<(), String> {
        if epoch != value {
            return Err(format!(
                "torn read: reader {r} observed epoch {epoch} with value {value}"
            ));
        }
        let reader = &mut state.readers[r];
        if epoch < reader.last_epoch {
            return Err(format!(
                "epoch regression: reader {r} went from {} back to {epoch}",
                reader.last_epoch
            ));
        }
        if epoch < reader.seen_atomic {
            return Err(format!(
                "stale read: reader {r} saw completed publication {} but loaded epoch {epoch}",
                reader.seen_atomic
            ));
        }
        reader.last_epoch = epoch;
        Ok(())
    }

    fn reader_retire(&self, state: &mut PublicationState, r: usize) -> Result<Step, String> {
        let reader = &mut state.readers[r];
        reader.loads_done += 1;
        reader.pc = 0;
        reader.seen_atomic = 0;
        Ok(if reader.loads_done == self.loads_per_reader {
            Step::Done
        } else {
            Step::Progress
        })
    }
}

// --- bounded-queue model ------------------------------------------------

/// A producer/consumer/closer workload over the bounded-queue algorithm
/// (`gnn4ip_core::BoundedQueue`).
///
/// Every real queue access happens inside one mutex-guarded critical
/// section, so each is a single atomic step here; the modeled
/// concurrency is the condvar protocol. "Going to sleep" (the failed
/// predicate check plus joining the waitset) is atomic because
/// `Condvar::wait` releases the lock and parks in one operation; a
/// sleeping thread is [`Step::Blocked`] until a notify removes it from
/// the waitset, after which it re-acquires the lock and re-checks — the
/// wait loop. Notifies wake the longest-waiting thread (deterministic
/// FIFO; a sound refinement of the platform's arbitrary choice for the
/// wakeup-counting invariants checked here).
#[derive(Debug, Clone, Copy)]
pub struct BoundedQueueModel {
    /// Queue capacity `push` blocks at.
    pub capacity: usize,
    /// Concurrent producer threads.
    pub producers: usize,
    /// Pushes each producer attempts (a closed queue fails the rest).
    pub pushes_per_producer: usize,
    /// Concurrent consumer threads; each pops until `None`.
    pub consumers: usize,
    /// `true` models the real algorithm (`notify_all` in `close`);
    /// `false` downgrades close to `notify_one` — the seeded lost-wakeup
    /// bug, which the checker must report as a deadlock.
    pub notify_all_on_close: bool,
}

impl BoundedQueueModel {
    /// The real algorithm: `producers` threads pushing
    /// `pushes_per_producer` items each into a `capacity`-bounded queue,
    /// `consumers` threads popping until drained, one closer.
    pub fn drained(
        producers: usize,
        pushes_per_producer: usize,
        consumers: usize,
        capacity: usize,
    ) -> Self {
        Self {
            capacity,
            producers,
            pushes_per_producer,
            consumers,
            notify_all_on_close: true,
        }
    }

    /// Close downgraded to `notify_one`: with two consumers asleep at
    /// close, only one wakes and the other is stranded forever. The
    /// explorer must find that schedule and report the deadlock.
    pub fn lost_wakeup() -> Self {
        Self {
            capacity: 1,
            producers: 1,
            pushes_per_producer: 1,
            consumers: 2,
            notify_all_on_close: false,
        }
    }
}

/// Shared + thread-local state of [`BoundedQueueModel`], cloned at every
/// scheduler branch.
#[derive(Debug, Clone)]
pub struct BoundedQueueState {
    /// Queue contents: items are global push sequence numbers, so FIFO
    /// and exactly-once are checkable from the pop order alone.
    items: VecDeque<u64>,
    closed: bool,
    /// Sequence number the next successful push enqueues.
    next_push: u64,
    /// Sequence number the next pop must dequeue (FIFO invariant).
    next_pop: u64,
    /// Producers parked on `not_full`, in wait order.
    wait_full: Vec<usize>,
    /// Consumers parked on `not_empty`, in wait order.
    wait_empty: Vec<usize>,
    /// Successful pushes per producer.
    pushes_done: Vec<usize>,
}

impl Program for BoundedQueueModel {
    type State = BoundedQueueState;

    fn init(&self) -> BoundedQueueState {
        BoundedQueueState {
            items: VecDeque::new(),
            closed: false,
            next_push: 0,
            next_pop: 0,
            wait_full: Vec::new(),
            wait_empty: Vec::new(),
            pushes_done: vec![0; self.producers],
        }
    }

    fn threads(&self) -> usize {
        self.producers + self.consumers + 1 // + the closer
    }

    fn step(&self, state: &mut BoundedQueueState, tid: usize) -> Result<Step, String> {
        if tid < self.producers {
            self.producer_step(state, tid)
        } else if tid < self.producers + self.consumers {
            self.consumer_step(state, tid)
        } else {
            self.closer_step(state)
        }
    }

    fn check_final(&self, state: &BoundedQueueState) -> Result<(), String> {
        if !state.items.is_empty() {
            return Err(format!(
                "close failed to drain: {} item(s) left queued",
                state.items.len()
            ));
        }
        if state.next_pop != state.next_push {
            return Err(format!(
                "exactly-once violated: {} item(s) pushed but {} popped",
                state.next_push, state.next_pop
            ));
        }
        if !state.wait_full.is_empty() || !state.wait_empty.is_empty() {
            return Err("a retired thread was left in a waitset".to_string());
        }
        Ok(())
    }
}

impl BoundedQueueModel {
    /// `notify_one`: wake the longest-waiting sleeper, if any.
    fn wake_one(waitset: &mut Vec<usize>) {
        if !waitset.is_empty() {
            waitset.remove(0);
        }
    }

    /// One `push` critical section: fail if closed, enqueue if there is
    /// room (then `not_empty.notify_one()`), otherwise park on
    /// `not_full`.
    fn producer_step(&self, state: &mut BoundedQueueState, tid: usize) -> Result<Step, String> {
        if state.wait_full.contains(&tid) {
            return Ok(Step::Blocked);
        }
        if state.closed {
            // push returns Err(item): the producer stops, like the serve
            // parser does on a closed queue
            return Ok(Step::Done);
        }
        if state.items.len() < self.capacity {
            state.items.push_back(state.next_push);
            state.next_push += 1;
            if state.items.len() > self.capacity {
                return Err(format!(
                    "capacity exceeded: {} items in a queue bounded at {}",
                    state.items.len(),
                    self.capacity
                ));
            }
            Self::wake_one(&mut state.wait_empty);
            state.pushes_done[tid] += 1;
            return Ok(if state.pushes_done[tid] >= self.pushes_per_producer {
                Step::Done
            } else {
                Step::Progress
            });
        }
        state.wait_full.push(tid);
        Ok(Step::Progress)
    }

    /// One `pop` critical section: dequeue if an item is ready (then
    /// `not_full.notify_one()`), retire on closed-and-drained (`None`),
    /// otherwise park on `not_empty`.
    fn consumer_step(&self, state: &mut BoundedQueueState, tid: usize) -> Result<Step, String> {
        if state.wait_empty.contains(&tid) {
            return Ok(Step::Blocked);
        }
        if let Some(id) = state.items.pop_front() {
            if id != state.next_pop {
                return Err(format!(
                    "FIFO violated: consumer {} popped item {id} but item {} was next",
                    tid - self.producers,
                    state.next_pop
                ));
            }
            state.next_pop += 1;
            Self::wake_one(&mut state.wait_full);
            return Ok(Step::Progress);
        }
        if state.closed {
            // pop returned None — closed and drained
            return Ok(Step::Done);
        }
        state.wait_empty.push(tid);
        Ok(Step::Progress)
    }

    /// The `close` critical section: set the flag, wake sleepers —
    /// everyone (correct) or one per condvar (the seeded bug).
    fn closer_step(&self, state: &mut BoundedQueueState) -> Result<Step, String> {
        state.closed = true;
        if self.notify_all_on_close {
            state.wait_full.clear();
            state.wait_empty.clear();
        } else {
            Self::wake_one(&mut state.wait_full);
            Self::wake_one(&mut state.wait_empty);
        }
        Ok(Step::Done)
    }
}

// --- the CI suite -------------------------------------------------------

/// One exploration in the publication-slot suite.
#[derive(Debug, Clone)]
pub struct SchedRun {
    /// Config label.
    pub name: String,
    /// Completed schedules explored (exhaustive).
    pub schedules: usize,
    /// Deepest schedule length.
    pub deepest: usize,
}

/// The aggregate result [`verify_publication_slot`] reports.
#[derive(Debug, Clone)]
pub struct SchedSummary {
    /// Every exploration that ran.
    pub runs: Vec<SchedRun>,
    /// Sum of schedules across the passing (guarded) configs.
    pub total_schedules: usize,
}

/// The interleaving gate `ci.sh --stage analysis` runs: explores the
/// publication-slot model across writer/reader workloads (every guarded
/// config must pass exhaustively) and then checks the checker by
/// confirming the unguarded variant's torn read *is* found.
///
/// # Errors
///
/// Returns a description of the first violated invariant, truncated
/// exploration, or — worst of all — a seeded bug the checker missed.
pub fn verify_publication_slot() -> Result<SchedSummary, String> {
    let explorer = Explorer::exhaustive();
    let configs: &[(&str, PublicationModel)] = &[
        ("1w-2r load", PublicationModel::guarded(1, 2)),
        ("2w-1r load", PublicationModel::guarded(2, 1)),
        (
            "1w-1r x2 loads",
            PublicationModel {
                writers: 1,
                publishes_per_writer: 2,
                readers: 1,
                loads_per_reader: 2,
                use_if_newer: false,
                guarded: true,
            },
        ),
        (
            "1w-2r if-newer",
            PublicationModel {
                writers: 1,
                publishes_per_writer: 1,
                readers: 2,
                loads_per_reader: 1,
                use_if_newer: true,
                guarded: true,
            },
        ),
        (
            "1w x2-1r if-newer x2",
            PublicationModel {
                writers: 1,
                publishes_per_writer: 2,
                readers: 1,
                loads_per_reader: 2,
                use_if_newer: true,
                guarded: true,
            },
        ),
    ];

    let mut summary = SchedSummary {
        runs: Vec::new(),
        total_schedules: 0,
    };
    for (name, model) in configs {
        let report = explorer.explore(model);
        if let Some(violation) = &report.violation {
            return Err(format!("config '{name}': {violation}"));
        }
        if report.truncated {
            return Err(format!(
                "config '{name}': exploration truncated at {} schedules — shrink the model \
                 or raise the cap",
                report.schedules
            ));
        }
        summary.total_schedules += report.schedules;
        summary.runs.push(SchedRun {
            name: (*name).to_string(),
            schedules: report.schedules,
            deepest: report.deepest,
        });
    }

    // the checker must catch the seeded bug, or its green means nothing
    let buggy = explorer.explore(&PublicationModel::unguarded());
    match &buggy.violation {
        Some(v) if v.message.contains("torn read") => {}
        Some(v) => return Err(format!("unguarded model failed for the wrong reason: {v}")),
        None => {
            return Err("checker self-test failed: the seeded torn-read bug in the \
                        unguarded model was not found"
                .to_string())
        }
    }
    Ok(summary)
}

/// The interleaving gate for the serve loop's backpressure primitive:
/// explores the bounded-queue model across producer/consumer workloads
/// (every `notify_all` config must pass exhaustively — no lost wakeup,
/// no deadlock, never over capacity, FIFO exactly once) and then checks
/// the checker by confirming the `notify_one`-on-close seeded bug *is*
/// reported as a deadlock.
///
/// # Errors
///
/// Returns a description of the first violated invariant, truncated
/// exploration, or a seeded bug the checker missed.
pub fn verify_bounded_queue() -> Result<SchedSummary, String> {
    let explorer = Explorer::exhaustive();
    let configs: &[(&str, BoundedQueueModel)] = &[
        ("1p-1c cap1 x2", BoundedQueueModel::drained(1, 2, 1, 1)),
        ("2p-1c cap1", BoundedQueueModel::drained(2, 1, 1, 1)),
        ("1p-2c cap1 x2", BoundedQueueModel::drained(1, 2, 2, 1)),
        ("2p-2c cap2", BoundedQueueModel::drained(2, 1, 2, 2)),
        ("1p-1c cap2 x3", BoundedQueueModel::drained(1, 3, 1, 2)),
    ];

    let mut summary = SchedSummary {
        runs: Vec::new(),
        total_schedules: 0,
    };
    for (name, model) in configs {
        let report = explorer.explore(model);
        if let Some(violation) = &report.violation {
            return Err(format!("config '{name}': {violation}"));
        }
        if report.truncated {
            return Err(format!(
                "config '{name}': exploration truncated at {} schedules — shrink the model \
                 or raise the cap",
                report.schedules
            ));
        }
        summary.total_schedules += report.schedules;
        summary.runs.push(SchedRun {
            name: (*name).to_string(),
            schedules: report.schedules,
            deepest: report.deepest,
        });
    }

    // the checker must catch the seeded lost wakeup, or its green means
    // nothing
    let buggy = explorer.explore(&BoundedQueueModel::lost_wakeup());
    match &buggy.violation {
        Some(v) if v.message.contains("deadlock") => {}
        Some(v) => {
            return Err(format!(
                "lost-wakeup model failed for the wrong reason: {v}"
            ))
        }
        None => {
            return Err(
                "checker self-test failed: the seeded lost-wakeup bug (notify_one \
                        on close) was not found"
                    .to_string(),
            )
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_model_passes_exhaustively() {
        let report = Explorer::exhaustive().explore(&PublicationModel::guarded(1, 2));
        assert!(report.passed(), "{:?}", report.violation);
        assert!(report.schedules > 0);
    }

    #[test]
    fn unguarded_model_tears() {
        let report = Explorer::exhaustive().explore(&PublicationModel::unguarded());
        let violation = report.violation.expect("torn read must be found");
        assert!(violation.message.contains("torn read"), "{violation}");
    }

    #[test]
    fn suite_passes_and_is_thorough() {
        let summary = verify_publication_slot().expect("suite passes");
        assert!(
            summary.total_schedules >= 1000,
            "only {} schedules explored — the acceptance gate requires >= 1000",
            summary.total_schedules
        );
        assert!(summary.runs.len() >= 5);
    }

    #[test]
    fn two_writers_never_regress_the_epoch() {
        // fetch_max is what keeps a slow writer's late store from
        // regressing the atomic; the model with 2 writers exercises the
        // window where writer A's store lands after writer B's
        let report = Explorer::exhaustive().explore(&PublicationModel::guarded(2, 1));
        assert!(report.passed(), "{:?}", report.violation);
    }

    #[test]
    fn queue_model_passes_exhaustively() {
        let report = Explorer::exhaustive().explore(&BoundedQueueModel::drained(1, 2, 2, 1));
        assert!(report.passed(), "{:?}", report.violation);
        assert!(report.schedules > 0);
    }

    #[test]
    fn lost_wakeup_close_is_found_as_a_deadlock() {
        let report = Explorer::exhaustive().explore(&BoundedQueueModel::lost_wakeup());
        let violation = report.violation.expect("lost wakeup must be found");
        assert!(violation.message.contains("deadlock"), "{violation}");
    }

    #[test]
    fn queue_suite_passes_and_is_thorough() {
        let summary = verify_bounded_queue().expect("suite passes");
        assert!(
            summary.total_schedules >= 1000,
            "only {} schedules explored — the acceptance gate requires >= 1000",
            summary.total_schedules
        );
        assert!(summary.runs.len() >= 5);
    }

    #[test]
    fn full_producer_blocks_until_a_pop_frees_a_slot() {
        // capacity 1, two pushes: the second push must park on not_full
        // in some schedule and still complete in all of them — the
        // wakeup chain pop -> notify_one -> re-check is what this config
        // exercises
        let report = Explorer::exhaustive().explore(&BoundedQueueModel::drained(1, 2, 1, 1));
        assert!(report.passed(), "{:?}", report.violation);
    }

    #[test]
    fn if_newer_misses_are_legal_and_checked() {
        let model = PublicationModel {
            writers: 1,
            publishes_per_writer: 1,
            readers: 2,
            loads_per_reader: 2,
            use_if_newer: true,
            guarded: true,
        };
        let report = Explorer::exhaustive().explore(&model);
        assert!(report.passed(), "{:?}", report.violation);
    }
}
