//! Conformance between the step-level model the checker explores and the
//! real `gnn4ip_core::PublicationSlot`: the model suite must pass
//! exhaustively (with the schedule count the CI gate requires), and the
//! real implementation, hammered by real threads, must exhibit exactly
//! the invariants the model proves — epoch monotonicity, strictly-newer
//! `load_if_newer` results, writer progress, and agreement between the
//! atomic epoch and the loaded pair.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gnn4ip_analysis::models::verify_publication_slot;
use gnn4ip_core::PublicationSlot;

#[test]
fn model_suite_is_exhaustive_and_catches_the_seeded_bug() {
    let summary = verify_publication_slot().expect("all guarded configs pass");
    assert!(
        summary.total_schedules >= 1000,
        "acceptance gate: >= 1000 distinct schedules, got {}",
        summary.total_schedules
    );
    for run in &summary.runs {
        assert!(run.schedules > 0, "config '{}' explored nothing", run.name);
    }
}

/// The real slot under real threads: every invariant the model proves,
/// asserted on the implementation. Thread scheduling here is sampled,
/// not exhaustive — exhaustiveness is the model's job — but any
/// violation this test could ever see is one the model already rules
/// out, so a failure means model and implementation have diverged.
#[test]
fn real_slot_upholds_the_modeled_invariants() {
    let slot: Arc<PublicationSlot<u64>> = Arc::new(PublicationSlot::new());
    let published = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _writer in 0..2 {
            let slot = Arc::clone(&slot);
            let published = &published;
            scope.spawn(move || {
                for _ in 0..100 {
                    slot.publish(0);
                    published.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for _reader in 0..4 {
            let slot = Arc::clone(&slot);
            scope.spawn(move || {
                let mut seen = 0u64;
                for _ in 0..400 {
                    if let Some(p) = slot.load_if_newer(seen) {
                        assert!(
                            p.epoch() > seen,
                            "load_if_newer({seen}) returned epoch {}",
                            p.epoch()
                        );
                        seen = p.epoch();
                    }
                    // the atomic epoch a reader observes is never ahead of
                    // what a subsequent load returns (publication
                    // visibility: value lands before the atomic advances)
                    let observed = slot.epoch();
                    if let Some(p) = slot.load() {
                        assert!(
                            p.epoch() >= observed,
                            "completed publication {observed} not visible: loaded {}",
                            p.epoch()
                        );
                    } else {
                        assert_eq!(observed, 0, "epoch {observed} completed but load is empty");
                    }
                }
            });
        }
    });
    // writer progress: every publish completed and is accounted for
    assert_eq!(slot.epoch(), 200);
    assert_eq!(published.load(Ordering::Relaxed), 200);
    let last = slot.load().expect("final publication");
    assert_eq!(last.epoch(), 200);
}

/// The pair is handed out atomically: a publication's epoch and payload
/// can never be observed mismatched, even while writers replace the
/// value. The payload carries the epoch the writer claimed for it.
#[test]
fn real_slot_never_tears_the_pair() {
    let slot: Arc<PublicationSlot<u64>> = Arc::new(PublicationSlot::new());
    std::thread::scope(|scope| {
        let writer_slot = Arc::clone(&slot);
        scope.spawn(move || {
            // payload == the epoch this publish will be stamped with:
            // epochs are claimed in mutex order, and this is the only
            // writer, so publish i gets epoch i
            for i in 1..=500u64 {
                let got = writer_slot.publish(i);
                assert_eq!(got, i, "single writer publishes in sequence");
            }
        });
        for _ in 0..4 {
            let slot = Arc::clone(&slot);
            scope.spawn(move || {
                let mut last = 0u64;
                for _ in 0..1000 {
                    if let Some(p) = slot.load() {
                        assert_eq!(
                            p.epoch(),
                            *p.value().as_ref(),
                            "torn publication: epoch and payload disagree"
                        );
                        assert!(p.epoch() >= last, "epoch went backwards");
                        last = p.epoch();
                    }
                }
            });
        }
    });
}
