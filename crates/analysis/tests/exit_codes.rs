//! Integration tests for the `g4check` binary's exit-code contract,
//! which `ci.sh --stage analysis` relies on to distinguish findings
//! from infrastructure failures:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean |
//! | 1    | violations found |
//! | 2    | usage error |
//! | 3    | internal error |

use std::path::PathBuf;
use std::process::{Command, Output};

fn g4check(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_g4check"))
        .args(args)
        .output()
        .expect("g4check spawns")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("g4check exits, not signals")
}

/// A throwaway workspace under the OS temp dir, deleted on drop.
struct Workspace {
    root: PathBuf,
}

impl Workspace {
    fn with(name: &str, files: &[(&str, &str)]) -> Self {
        let root = std::env::temp_dir().join(format!("g4check-exit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let base: &[(&str, &str)] = &[("Cargo.toml", "[workspace]\nmembers = []\n")];
        for (rel, content) in base.iter().chain(files) {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("paths nest")).expect("mkdir");
            std::fs::write(path, content).expect("write file");
        }
        Self { root }
    }

    fn arg(&self) -> String {
        self.root.display().to_string()
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn clean_workspace_exits_zero() {
    let ws = Workspace::with(
        "clean",
        &[(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() -> u32 {\n    2\n}\n",
        )],
    );
    let out = g4check(&["--root", &ws.arg(), "--no-cache", "graph"]);
    assert_eq!(
        code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn violations_exit_one() {
    let ws = Workspace::with(
        "dirty",
        &[(
            "crates/tensor/src/quant.rs",
            "pub fn q(v: f32) -> i8 {\n    v as i8\n}\n",
        )],
    );
    let out = g4check(&["--root", &ws.arg(), "--no-cache", "graph"]);
    assert_eq!(
        code(&out),
        1,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cast-truncation"), "stderr: {stderr}");
}

#[test]
fn usage_errors_exit_two() {
    let out = g4check(&["--frobnicate"]);
    assert_eq!(code(&out), 2);
    let out = g4check(&["--root"]);
    assert_eq!(code(&out), 2);
    let out = g4check(&["lint", "sched"]);
    assert_eq!(code(&out), 2, "two modes is a usage error");
}

#[test]
fn unreadable_workspace_exits_three() {
    let out = g4check(&["--root", "/nonexistent/g4check-root", "graph"]);
    assert_eq!(
        code(&out),
        3,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn json_report_carries_violations_and_reuse() {
    let ws = Workspace::with(
        "json",
        &[(
            "crates/tensor/src/quant.rs",
            "pub fn q(v: f32) -> i8 {\n    v as i8\n}\n",
        )],
    );
    // first run: cold index, violation present, machine report on stdout
    let out = g4check(&["--root", &ws.arg(), "--json", "graph"]);
    assert_eq!(code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"clean\": false"), "stdout: {stdout}");
    assert!(
        stdout.contains("\"rule\": \"cast-truncation\""),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"index_reused\": 0"), "stdout: {stdout}");

    // second run: the serialized index is reused for every file
    let out = g4check(&["--root", &ws.arg(), "--json", "graph"]);
    assert_eq!(code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"index_reused\": 1"), "stdout: {stdout}");
    assert!(
        stdout.contains("\"index_reindexed\": 0"),
        "stdout: {stdout}"
    );
}

/// The machine report is versioned and deterministic: two runs over an
/// unchanged workspace produce byte-identical stdout. `--no-cache`
/// keeps the cold/warm counters out of the comparison — determinism is
/// a property of the workspace, not of cache history.
#[test]
fn json_report_is_versioned_and_byte_identical() {
    let ws = Workspace::with(
        "deterministic",
        &[
            (
                "crates/tensor/src/quant.rs",
                "pub fn q(v: f32) -> i8 {\n    v as i8\n}\n",
            ),
            (
                "crates/tensor/src/serialize.rs",
                "pub fn s(v: u32) -> u8 {\n    v as u8\n}\n",
            ),
        ],
    );
    let first = g4check(&["--root", &ws.arg(), "--json", "--no-cache", "graph"]);
    let second = g4check(&["--root", &ws.arg(), "--json", "--no-cache", "graph"]);
    assert_eq!(code(&first), 1);
    assert_eq!(code(&second), 1);
    assert_eq!(
        first.stdout,
        second.stdout,
        "reports differ:\n{}\n---\n{}",
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout)
    );
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(stdout.contains("\"schema_version\": 1"), "stdout: {stdout}");
    // the stable (path, line, rule) sort puts quant.rs after serialize.rs
    let quant = stdout.find("quant.rs").expect("quant violation");
    let serialize = stdout.find("serialize.rs").expect("serialize violation");
    assert!(
        quant < serialize,
        "violations not sorted by path:\n{stdout}"
    );
}
