//! Integration tests for the phase-1 symbol indexer: structural edge
//! cases (nested modules, impl blocks, raw strings) and the incremental
//! rebuild contract — a cached rebuild must be byte-for-byte equivalent
//! to a cold one.

use std::path::{Path, PathBuf};

use gnn4ip_analysis::build_index;
use gnn4ip_analysis::index::{index_file, load_cache, save_cache};

/// A throwaway workspace under the OS temp dir, deleted on drop.
struct Workspace {
    root: PathBuf,
}

impl Workspace {
    fn with(name: &str, files: &[(&str, &str)]) -> Self {
        let root =
            std::env::temp_dir().join(format!("g4check-indexer-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let base: &[(&str, &str)] = &[("Cargo.toml", "[workspace]\nmembers = []\n")];
        for (rel, content) in base.iter().chain(files) {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("paths nest")).expect("mkdir");
            std::fs::write(path, content).expect("write file");
        }
        Self { root }
    }
}

impl Drop for Workspace {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn nested_modules_qualify_fn_records() {
    let fi = index_file(
        Path::new("crates/demo/src/lib.rs"),
        "mod outer {\n\
         \x20   pub mod inner {\n\
         \x20       pub fn leaf() {}\n\
         \x20   }\n\
         \x20   pub fn mid() {}\n\
         }\n\
         pub fn top() {}\n",
    );
    let mods: Vec<(&str, &str)> = fi
        .fns
        .iter()
        .map(|f| (f.name.as_str(), f.module.as_str()))
        .collect();
    assert_eq!(
        mods,
        vec![("leaf", "outer::inner"), ("mid", "outer"), ("top", "")]
    );
}

#[test]
fn impl_blocks_set_owners_through_nesting() {
    let fi = index_file(
        Path::new("crates/demo/src/lib.rs"),
        "pub struct A;\n\
         pub struct B;\n\
         impl A {\n\
         \x20   pub fn one(&self) {}\n\
         }\n\
         mod m {\n\
         \x20   impl super::B {\n\
         \x20       pub fn two(&self) {}\n\
         \x20   }\n\
         }\n\
         pub fn free() {}\n",
    );
    let displays: Vec<String> = fi.fns.iter().map(|f| f.display()).collect();
    assert_eq!(displays, vec!["A::one", "B::two", "free"]);
}

#[test]
fn raw_strings_hide_call_like_text() {
    let fi = index_file(
        Path::new("crates/demo/src/lib.rs"),
        "pub fn template() -> &'static str {\n\
         \x20   r#\"fn fake() { evil.lock(); panic!(\"no\") }\"#\n\
         }\n",
    );
    assert_eq!(fi.fns.len(), 1, "the quoted fn is text, not an item");
    let f = &fi.fns[0];
    assert!(f.calls.is_empty(), "{:?}", f.calls);
    assert!(f.panics.is_empty(), "{:?}", f.panics);
}

#[test]
fn incremental_rebuild_equals_full_rebuild() {
    let ws = Workspace::with(
        "incremental",
        &[
            (
                "crates/demo/src/lib.rs",
                "pub fn stable() -> u32 {\n    41\n}\n",
            ),
            (
                "crates/demo/src/other.rs",
                "pub fn other() -> u32 {\n    1\n}\n",
            ),
        ],
    );
    let (cold, stats0) = build_index(&ws.root, None).expect("cold build");
    assert_eq!(stats0.reindexed, 2);
    assert_eq!(stats0.reused, 0);

    // unchanged workspace: everything reuses, nothing changes
    let (warm, stats1) = build_index(&ws.root, Some(&cold)).expect("warm build");
    assert_eq!(stats1.reused, 2);
    assert_eq!(stats1.reindexed, 0);
    assert_eq!(warm, cold);

    // edit one file (giving it let/arg/return dataflow records, so the
    // equivalence below covers the v2 flow serialization), delete the
    // other, add a third
    std::fs::write(
        ws.root.join("crates/demo/src/lib.rs"),
        "pub fn stable() -> u32 {\n    42\n}\n\
         pub fn fresh(n: usize) -> usize {\n    let m = n.min(4);\n    grow(m)\n}\n\
         fn grow(m: usize) -> usize {\n    m + 1\n}\n",
    )
    .expect("edit file");
    std::fs::remove_file(ws.root.join("crates/demo/src/other.rs")).expect("remove file");
    std::fs::write(
        ws.root.join("crates/demo/src/third.rs"),
        "pub fn third() {}\n",
    )
    .expect("add file");

    let (incremental, stats2) = build_index(&ws.root, Some(&cold)).expect("incremental build");
    let (full, _) = build_index(&ws.root, None).expect("full rebuild");
    assert_eq!(
        incremental, full,
        "incremental result must match a from-scratch build"
    );
    assert_eq!(stats2.reindexed, 2, "edited + added");
    assert_eq!(stats2.removed, 1, "deleted file leaves the index");
    assert!(!incremental.files.contains_key("crates/demo/src/other.rs"));

    // the equivalence must extend to the dataflow records, not just the
    // structural ones: the edited fn's let/arg flows and positional
    // params are present on both sides
    let fresh = incremental.files["crates/demo/src/lib.rs"]
        .fns
        .iter()
        .find(|f| f.name == "fresh")
        .expect("fresh indexed");
    assert_eq!(fresh.params, vec!["n"]);
    assert!(
        fresh
            .flows
            .iter()
            .any(|d| d.dst == "v:m" && d.what == "let"),
        "{:#?}",
        fresh.flows
    );
}

#[test]
fn cache_file_round_trips_through_disk() {
    let ws = Workspace::with(
        "cache-disk",
        &[(
            "crates/demo/src/lib.rs",
            "pub struct S { x: std::sync::Mutex<u64> }\n\
             impl S {\n\
             \x20   pub fn get(&self) -> u64 {\n\
             \x20       *self.x.lock().unwrap()\n\
             \x20   }\n\
             \x20   pub fn grow(&self, n: usize) -> Vec<u64> {\n\
             \x20       let cap = n.min(9);\n\
             \x20       Vec::with_capacity(cap)\n\
             \x20   }\n\
             }\n",
        )],
    );
    let (index, _) = build_index(&ws.root, None).expect("build");
    let cache = ws.root.join("target/g4check/index.v2");
    save_cache(&cache, &index).expect("save cache");
    let loaded = load_cache(&cache).expect("cache parses");
    assert_eq!(loaded, index);
    // the v2 additions survive the disk round-trip explicitly: `d`
    // dataflow lines and positional parameter names on the `n` line
    let grow = loaded.files["crates/demo/src/lib.rs"]
        .fns
        .iter()
        .find(|f| f.name == "grow")
        .expect("grow indexed");
    assert_eq!(grow.params, vec!["n"], "self is skipped, n keeps slot 0");
    assert!(
        grow.flows
            .iter()
            .any(|d| d.dst == "v:cap" && d.what == "let"),
        "{:#?}",
        grow.flows
    );

    let (rebuilt, stats) = build_index(&ws.root, Some(&loaded)).expect("rebuild from disk cache");
    assert_eq!(rebuilt, index);
    assert_eq!(stats.reused, 1);
}
