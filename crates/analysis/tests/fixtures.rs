//! Fixture-workspace tests for the `g4check` lint: each rule gets a tiny
//! on-disk workspace with one seeded violation, and the test asserts the
//! violation is reported at the exact path and line — plus the self-run
//! test proving the live workspace is clean.

use std::path::{Path, PathBuf};

use gnn4ip_analysis::build_index;
use gnn4ip_analysis::lint::{run_lint, LintConfig, LintReport, Rule, Violation};
use gnn4ip_analysis::rules::{run_full, run_graph_rules};

/// A throwaway workspace under the OS temp dir, deleted on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    /// Builds the clean baseline workspace plus `extra` files: a
    /// `[workspace]` manifest, one demo crate whose single writer call
    /// site matches the one `FORMATS` row and the one README table row.
    fn with(name: &str, extra: &[(&str, &str)]) -> Self {
        let root =
            std::env::temp_dir().join(format!("g4check-fixture-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let base: &[(&str, &str)] = &[
            ("Cargo.toml", "[workspace]\nmembers = []\n"),
            (
                "crates/tensor/src/serialize.rs",
                "pub const FORMATS: &[(&str, u16)] = &[(\"demo-kind\", 1)];\n\
                 pub struct BinWriter;\n",
            ),
            (
                "crates/demo/src/lib.rs",
                "#![forbid(unsafe_code)]\n\
                 pub fn save() {\n\
                 \x20   let _w = BinWriter::new(\"demo-kind\");\n\
                 }\n",
            ),
            (
                "README.md",
                "# demo\n\n| kind | version |\n|---|---|\n| `demo-kind` | v1 |\n",
            ),
        ];
        for (rel, content) in base.iter().chain(extra) {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("fixture paths nest")).expect("mkdir");
            std::fs::write(path, content).expect("write fixture file");
        }
        Self { root }
    }

    fn lint(&self) -> LintReport {
        run_lint(&LintConfig {
            root: self.root.clone(),
        })
        .expect("fixture lint runs")
    }

    /// Runs only the phase-2 graph rules (no line lints), so graph
    /// fixtures don't need `#![forbid(unsafe_code)]` boilerplate.
    fn graph(&self) -> Vec<Violation> {
        let (index, _) = build_index(&self.root, None).expect("fixture index builds");
        run_graph_rules(&index)
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Asserts the report holds exactly one violation, of `rule` at
/// `path:line`.
fn assert_single(report: &LintReport, rule: Rule, path: &str, line: usize) {
    assert_eq!(
        report.violations.len(),
        1,
        "expected exactly one violation, got: {:#?}",
        report.violations
    );
    let v = &report.violations[0];
    assert_eq!(v.rule, rule, "wrong rule: {v}");
    assert_eq!(v.path, Path::new(path), "wrong path: {v}");
    assert_eq!(v.line, line, "wrong line: {v}");
}

#[test]
fn baseline_fixture_is_clean() {
    let report = Fixture::with("baseline", &[]).lint();
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn forbidden_rng_is_reported_with_line() {
    let fx = Fixture::with(
        "rng",
        &[(
            "crates/demo/src/rng.rs",
            "use rand::thread_rng;\n\npub fn roll() -> u32 {\n    thread_rng().gen()\n}\n",
        )],
    );
    let report = fx.lint();
    // both the import (line 1) and the call (line 4) fire
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
    assert!(report
        .violations
        .iter()
        .all(|v| v.rule == Rule::ForbiddenRng && v.path == Path::new("crates/demo/src/rng.rs")));
    let lines: Vec<usize> = report.violations.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![1, 4]);
}

#[test]
fn from_entropy_is_reported() {
    let fx = Fixture::with(
        "entropy",
        &[(
            "crates/demo/src/seed.rs",
            "pub fn rng() -> StdRng {\n    StdRng::from_entropy()\n}\n",
        )],
    );
    assert_single(&fx.lint(), Rule::ForbiddenRng, "crates/demo/src/seed.rs", 2);
}

#[test]
fn unwrap_in_lib_is_reported_with_line() {
    let fx = Fixture::with(
        "unwrap",
        &[(
            "crates/demo/src/util.rs",
            "pub fn first(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
        )],
    );
    assert_single(&fx.lint(), Rule::UnwrapInLib, "crates/demo/src/util.rs", 2);
}

#[test]
fn annotated_unwrap_is_allowed() {
    let fx = Fixture::with(
        "unwrap-allowed",
        &[(
            "crates/demo/src/util.rs",
            "pub fn first(v: &[u32]) -> u32 {\n    \
             // g4check: allow(unwrap-in-lib): caller guarantees non-empty\n    \
             *v.first().unwrap()\n}\n",
        )],
    );
    let report = fx.lint();
    assert!(report.is_clean(), "{:#?}", report.violations);
}

#[test]
fn unwrap_in_test_code_is_fine() {
    let fx = Fixture::with(
        "unwrap-test",
        &[(
            "crates/demo/src/util.rs",
            "pub fn id(v: u32) -> u32 {\n    v\n}\n\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
             Some(1u32).unwrap();\n    }\n}\n",
        )],
    );
    let report = fx.lint();
    assert!(report.is_clean(), "{:#?}", report.violations);
}

#[test]
fn missing_forbid_unsafe_is_reported() {
    let fx = Fixture::with("forbid", &[("crates/other/src/lib.rs", "pub fn f() {}\n")]);
    assert_single(&fx.lint(), Rule::ForbidUnsafe, "crates/other/src/lib.rs", 0);
}

#[test]
fn wallclock_in_test_is_reported_with_line() {
    let fx = Fixture::with(
        "wallclock",
        &[(
            "crates/demo/src/timed.rs",
            "pub fn work() {}\n\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
             let _t = std::time::Instant::now();\n    }\n}\n",
        )],
    );
    assert_single(
        &fx.lint(),
        Rule::WallclockInTest,
        "crates/demo/src/timed.rs",
        7,
    );
}

#[test]
fn wallclock_outside_tests_is_fine() {
    let fx = Fixture::with(
        "wallclock-lib",
        &[(
            "crates/demo/src/timed.rs",
            "pub fn stamp() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
        )],
    );
    let report = fx.lint();
    assert!(report.is_clean(), "{:#?}", report.violations);
}

#[test]
fn unregistered_format_is_reported_with_line() {
    let fx = Fixture::with(
        "registry-drift",
        &[(
            "crates/demo/src/extra.rs",
            "pub fn save() {\n    let _w = BinWriter::with_version(\"mystery-kind\", 3);\n}\n",
        )],
    );
    assert_single(
        &fx.lint(),
        Rule::FormatRegistry,
        "crates/demo/src/extra.rs",
        2,
    );
}

#[test]
fn unregistered_corpus_kinds_are_reported() {
    // the corpus checkpoint layout introduced two kinds; a writer call
    // site for either must be flagged when the registry (which here only
    // knows demo-kind) hasn't caught up
    for (name, kind) in [
        ("corpus-manifest", "gnn4ip-corpus-manifest"),
        ("corpus-shard", "gnn4ip-corpus-shard"),
    ] {
        let src =
            format!("pub fn save() {{\n    let _w = BinWriter::with_version(\"{kind}\", 1);\n}}\n");
        let fx = Fixture::with(
            &format!("registry-{name}"),
            &[("crates/demo/src/corpus.rs", src.as_str())],
        );
        assert_single(
            &fx.lint(),
            Rule::FormatRegistry,
            "crates/demo/src/corpus.rs",
            2,
        );
    }
}

#[test]
fn stale_registry_row_is_reported() {
    let fx = Fixture::with(
        "registry-stale",
        &[
            (
                "crates/tensor/src/serialize.rs",
                "pub const FORMATS: &[(&str, u16)] = &[(\"demo-kind\", 1), (\"ghost-kind\", 4)];\n\
                 pub struct BinWriter;\n",
            ),
            // README documents the ghost row too, so the only drift left
            // is the registry row whose writer no longer exists
            (
                "README.md",
                "# demo\n\n| kind | version |\n|---|---|\n| `demo-kind` | v1 |\n| `ghost-kind` | v4 |\n",
            ),
        ],
    );
    assert_single(
        &fx.lint(),
        Rule::FormatRegistry,
        "crates/tensor/src/serialize.rs",
        1,
    );
}

#[test]
fn reader_of_unregistered_kind_is_reported() {
    let fx = Fixture::with(
        "registry-reader-unknown",
        &[(
            "crates/demo/src/load.rs",
            "pub fn load(bytes: &[u8]) {\n    let _r = BinReader::open(bytes, \"mystery-kind\");\n}\n",
        )],
    );
    let report = fx.lint();
    assert_single(&report, Rule::FormatRegistry, "crates/demo/src/load.rs", 2);
    assert!(
        report.violations[0].message.contains("reader"),
        "{}",
        report.violations[0]
    );
}

#[test]
fn reader_behind_the_registered_version_is_reported() {
    // the registry moved late-kind to v2 (and a writer produces it), but
    // one reader still caps at v1 — it would reject current artifacts
    let fx = Fixture::with(
        "registry-reader-stale",
        &[
            (
                "crates/tensor/src/serialize.rs",
                "pub const FORMATS: &[(&str, u16)] = &[(\"demo-kind\", 1), (\"late-kind\", 2)];\n\
                 pub struct BinWriter;\n",
            ),
            (
                "README.md",
                "# demo\n\n| kind | version |\n|---|---|\n| `demo-kind` | v1 |\n| `late-kind` | v2 |\n",
            ),
            (
                "crates/demo/src/late.rs",
                "pub fn save() {\n    let _w = BinWriter::with_version(\"late-kind\", 2);\n}\n\
                 pub fn load(bytes: &[u8]) {\n    \
                 let _r = BinReader::open_versioned(bytes, \"late-kind\", 1);\n}\n",
            ),
        ],
    );
    let report = fx.lint();
    assert_single(&report, Rule::FormatRegistry, "crates/demo/src/late.rs", 5);
    assert!(
        report.violations[0].message.contains("max_version"),
        "{}",
        report.violations[0]
    );
}

#[test]
fn forward_compatible_reader_is_fine() {
    // a reader may accept versions newer than any registered one — that
    // is forward compatibility, not drift
    let fx = Fixture::with(
        "registry-reader-forward",
        &[(
            "crates/demo/src/load.rs",
            "pub fn load(bytes: &[u8]) {\n    \
             let _r = BinReader::open_versioned(bytes, \"demo-kind\", 3);\n}\n",
        )],
    );
    let report = fx.lint();
    assert!(report.is_clean(), "{:#?}", report.violations);
}

#[test]
fn a_reader_does_not_keep_a_stale_registry_row_alive() {
    // ghost-kind is registered, documented, and *read* — but nothing
    // writes it, so the stale-row check must still fire
    let fx = Fixture::with(
        "registry-reader-ghost",
        &[
            (
                "crates/tensor/src/serialize.rs",
                "pub const FORMATS: &[(&str, u16)] = &[(\"demo-kind\", 1), (\"ghost-kind\", 1)];\n\
                 pub struct BinWriter;\n",
            ),
            (
                "README.md",
                "# demo\n\n| kind | version |\n|---|---|\n| `demo-kind` | v1 |\n| `ghost-kind` | v1 |\n",
            ),
            (
                "crates/demo/src/load.rs",
                "pub fn load(bytes: &[u8]) {\n    let _r = BinReader::open(bytes, \"ghost-kind\");\n}\n",
            ),
        ],
    );
    assert_single(
        &fx.lint(),
        Rule::FormatRegistry,
        "crates/tensor/src/serialize.rs",
        1,
    );
}

#[test]
fn readme_drift_is_reported() {
    let fx = Fixture::with(
        "registry-readme",
        &[("README.md", "# demo\n\nno artifact table here at all\n")],
    );
    assert_single(&fx.lint(), Rule::FormatRegistry, "README.md", 0);
}

#[test]
fn bad_annotation_is_reported_with_line() {
    let fx = Fixture::with(
        "bad-annotation",
        &[(
            "crates/demo/src/ann.rs",
            "pub fn f(v: &[u32]) -> u32 {\n    \
             // g4check: allow(made-up-rule): because\n    \
             v[0]\n}\n",
        )],
    );
    assert_single(&fx.lint(), Rule::BadAnnotation, "crates/demo/src/ann.rs", 2);
}

/// Asserts `violations` holds exactly one finding, of `rule` at
/// `path:line`.
fn assert_single_graph(violations: &[Violation], rule: Rule, path: &str, line: usize) {
    assert_eq!(
        violations.len(),
        1,
        "expected exactly one graph violation, got: {violations:#?}"
    );
    let v = &violations[0];
    assert_eq!(v.rule, rule, "wrong rule: {v}");
    assert_eq!(v.path, Path::new(path), "wrong path: {v}");
    assert_eq!(v.line, line, "wrong line: {v}");
}

// ------------------------------------------------- phase-2 graph rules

#[test]
fn lock_order_inversion_is_reported() {
    let fx = Fixture::with(
        "lock-inversion",
        &[(
            "crates/demo/src/svc.rs",
            "use std::sync::Mutex;\n\
             pub struct Svc { state: Mutex<u64>, log: Mutex<u64> }\n\
             impl Svc {\n\
             \x20   pub fn ab(&self) {\n\
             \x20       let _a = self.state.lock().unwrap();\n\
             \x20       let _b = self.log.lock().unwrap();\n\
             \x20   }\n\
             \x20   pub fn ba(&self) {\n\
             \x20       let _b = self.log.lock().unwrap();\n\
             \x20       let _a = self.state.lock().unwrap();\n\
             \x20   }\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert_single_graph(&report, Rule::LockDiscipline, "crates/demo/src/svc.rs", 10);
    assert!(
        report[0].message.contains("lock-order inversion"),
        "{}",
        report[0]
    );
}

#[test]
fn blocking_call_under_lock_is_reported() {
    let fx = Fixture::with(
        "lock-blocking",
        &[(
            "crates/demo/src/svc.rs",
            "use std::sync::{mpsc::Receiver, Mutex};\n\
             pub struct Svc { state: Mutex<u64> }\n\
             impl Svc {\n\
             \x20   pub fn drain(&self, rx: &Receiver<u64>) {\n\
             \x20       let mut g = self.state.lock().unwrap();\n\
             \x20       *g += rx.recv().unwrap_or(0);\n\
             \x20   }\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert_single_graph(&report, Rule::LockDiscipline, "crates/demo/src/svc.rs", 6);
    assert!(
        report[0].message.contains("blocks the calling thread"),
        "{}",
        report[0]
    );
}

#[test]
fn unproven_narrowing_cast_on_quant_path_is_reported() {
    let fx = Fixture::with(
        "cast-quant",
        &[(
            "crates/tensor/src/quant.rs",
            "pub fn quantize(v: f32, scale: f32) -> i8 {\n\
             \x20   (v / scale).round() as i8\n\
             }\n",
        )],
    );
    assert_single_graph(
        &fx.graph(),
        Rule::CastTruncation,
        "crates/tensor/src/quant.rs",
        2,
    );
}

#[test]
fn clamped_cast_on_quant_path_is_fine() {
    let fx = Fixture::with(
        "cast-clamped",
        &[(
            "crates/tensor/src/quant.rs",
            "pub fn quantize(v: f32, scale: f32) -> i8 {\n\
             \x20   (v / scale).round().clamp(-127.0, 127.0) as i8\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert!(report.is_empty(), "{report:#?}");
}

#[test]
fn unregistered_float_reduction_is_reported() {
    let fx = Fixture::with(
        "floatdet",
        &[(
            "crates/eval/src/manifest.rs",
            "pub fn checksum(xs: &[f32]) -> f32 {\n\
             \x20   xs.iter().sum()\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert_single_graph(
        &report,
        Rule::FloatDeterminism,
        "crates/eval/src/manifest.rs",
        2,
    );
    assert!(
        report[0].message.contains("DETERMINISM_KERNELS"),
        "{}",
        report[0]
    );
}

#[test]
fn panic_reachable_from_a_bin_entry_is_reported() {
    let fx = Fixture::with(
        "panic-bin",
        &[
            (
                "crates/demo/src/bin/tool.rs",
                "fn main() {\n\
                 \x20   let v = parse(\"7\");\n\
                 \x20   drop(v);\n\
                 }\n",
            ),
            (
                "crates/demo/src/parse_util.rs",
                "pub fn parse(s: &str) -> u64 {\n\
                 \x20   s.parse().unwrap()\n\
                 }\n",
            ),
        ],
    );
    let report = fx.graph();
    assert_single_graph(&report, Rule::PanicPath, "crates/demo/src/parse_util.rs", 2);
    assert!(report[0].message.contains("main → parse"), "{}", report[0]);
}

#[test]
fn documented_panic_contract_is_exempt() {
    let fx = Fixture::with(
        "panic-documented",
        &[(
            "crates/demo/src/bin/tool.rs",
            "fn main() {\n\
             \x20   let v = parse(\"7\");\n\
             \x20   drop(v);\n\
             }\n\
             /// # Panics\n\
             ///\n\
             /// Panics on malformed input.\n\
             fn parse(s: &str) -> u64 {\n\
             \x20   s.parse().unwrap()\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert!(report.is_empty(), "{report:#?}");
}

// ------------------------------------------------- taint rules

#[test]
fn taint_through_two_hop_chain_reaches_alloc() {
    // read_body at the registered source path taints `body`; the count
    // derived from it crosses a call boundary into `prepare`, whose
    // allocation is two hops from the trust boundary
    let fx = Fixture::with(
        "taint-two-hop",
        &[(
            "crates/core/src/service.rs",
            "pub fn read_body() -> String {\n\
             \x20   String::new()\n\
             }\n\
             pub fn handle() {\n\
             \x20   let body = read_body();\n\
             \x20   let n = body.len();\n\
             \x20   prepare(n);\n\
             }\n\
             fn prepare(n: usize) {\n\
             \x20   let v: Vec<u8> = Vec::with_capacity(n);\n\
             \x20   drop(v);\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert_single_graph(
        &report,
        Rule::UntrustedAlloc,
        "crates/core/src/service.rs",
        10,
    );
    assert!(report[0].message.contains("with_capacity"), "{}", report[0]);
}

#[test]
fn sanitizer_clears_taint_before_alloc() {
    // identical shape, but the count passes through `.min(64)` — the
    // registered sanitizer bounds it and no violation may fire
    let fx = Fixture::with(
        "taint-sanitized",
        &[(
            "crates/core/src/service.rs",
            "pub fn read_body() -> String {\n\
             \x20   String::new()\n\
             }\n\
             pub fn handle() {\n\
             \x20   let body = read_body();\n\
             \x20   let n = body.len().min(64);\n\
             \x20   prepare(n);\n\
             }\n\
             fn prepare(n: usize) {\n\
             \x20   let v: Vec<u8> = Vec::with_capacity(n);\n\
             \x20   drop(v);\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert!(report.is_empty(), "{report:#?}");
}

#[test]
fn taint_survives_field_projection() {
    // the untrusted count rides into a struct field and comes back out
    // through `h.rows`: projecting a field off a tainted value must not
    // launder it
    let fx = Fixture::with(
        "taint-projection",
        &[(
            "crates/core/src/service.rs",
            "pub struct Header {\n\
             \x20   pub rows: usize,\n\
             }\n\
             pub fn read_body() -> String {\n\
             \x20   String::new()\n\
             }\n\
             fn parse_header(body: &str) -> Header {\n\
             \x20   Header { rows: body.len() }\n\
             }\n\
             pub fn handle() {\n\
             \x20   let body = read_body();\n\
             \x20   let h = parse_header(&body);\n\
             \x20   let v: Vec<u64> = Vec::with_capacity(h.rows);\n\
             \x20   drop(v);\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert_single_graph(
        &report,
        Rule::UntrustedAlloc,
        "crates/core/src/service.rs",
        13,
    );
}

#[test]
fn tainted_length_arithmetic_is_reported() {
    let fx = Fixture::with(
        "taint-arith",
        &[(
            "crates/core/src/service.rs",
            "pub fn read_body() -> String {\n\
             \x20   String::new()\n\
             }\n\
             pub fn payload_len(cols: usize) -> usize {\n\
             \x20   let body = read_body();\n\
             \x20   let rows = body.len();\n\
             \x20   rows * cols\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert_single_graph(&report, Rule::LenOverflow, "crates/core/src/service.rs", 7);
    assert!(report[0].message.contains("checked_mul"), "{}", report[0]);
}

#[test]
fn swallowed_parse_of_untrusted_data_is_reported() {
    let fx = Fixture::with(
        "taint-swallow",
        &[(
            "crates/core/src/service.rs",
            "pub fn read_body() -> String {\n\
             \x20   String::new()\n\
             }\n\
             pub fn handle() {\n\
             \x20   let body = read_body();\n\
             \x20   let _ = body.parse::<u32>();\n\
             }\n",
        )],
    );
    let report = fx.graph();
    assert_single_graph(&report, Rule::ErrorSwallow, "crates/core/src/service.rs", 6);
}

/// The gate the CI stage depends on: the live workspace this test runs
/// inside must lint clean. A violation here is a real finding in the
/// repo — fix the code (or annotate with a justification), do not touch
/// this test.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels under the root")
        .to_path_buf();
    let report = run_lint(&LintConfig { root }).expect("workspace lints");
    assert!(
        report.is_clean(),
        "live workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        report.files_scanned
    );
}

/// Same gate, phase 2: the live workspace must be clean under every
/// graph rule (lock discipline, cast truncation, float determinism,
/// panic reachability, and the three taint rules — including the
/// registry staleness checks, which only arm on the live workspace).
/// Runs without a cache so the result cannot be stale.
#[test]
fn live_workspace_graph_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels under the root")
        .to_path_buf();
    let report = run_full(&LintConfig { root }, None).expect("workspace analysis runs");
    assert!(
        report.is_clean(),
        "live workspace has analysis violations:\n{}",
        report
            .all_violations()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_indexed > 50,
        "suspiciously few files indexed ({}) — did the indexer break?",
        report.files_indexed
    );
}
