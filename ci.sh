#!/usr/bin/env bash
# Full verification gate for the gnn4ip workspace. Everything resolves
# from in-repo path crates; no network access is required or attempted.
set -euo pipefail
cd "$(dirname "$0")"

# Guard against test-suite bloat: the non-ignored debug suite must stay
# fast (heavy model-training ablations live behind #[ignore] and run in
# the release stage below).
TIER1_TIMEOUT="${TIER1_TIMEOUT:-240}"

echo "==> tier-1: cargo build --release && cargo test -q (run under ${TIER1_TIMEOUT}s)"
cargo build --release --offline
cargo test -q --offline --no-run
timeout "${TIER1_TIMEOUT}" cargo test -q --offline

echo "==> workspace tests (every crate, incl. vendor shims)"
cargo test -q --offline --workspace

echo "==> ignored heavy suites (ablations), release mode"
cargo test -q --release --offline -- --ignored

echo "==> rustfmt"
cargo fmt --check

echo "==> clippy (-D warnings, all targets)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> examples build + quickstart smoke run"
cargo build --offline --examples
cargo run --release --offline --example quickstart

echo "==> benches + repro binary compile"
cargo bench --no-run --offline -p gnn4ip-bench
cargo bench --no-run --offline -p gnn4ip-bench --bench inference_engine
cargo build --release --offline -p gnn4ip-bench --bin repro

echo "==> ci.sh: all green"
