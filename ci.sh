#!/usr/bin/env bash
# Full verification gate for the gnn4ip workspace. Everything resolves
# from in-repo path crates; no network access is required or attempted.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> workspace tests (every crate, incl. vendor shims)"
cargo test -q --offline --workspace

echo "==> rustfmt"
cargo fmt --check

echo "==> clippy (-D warnings, all targets)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> examples build + quickstart smoke run"
cargo build --offline --examples
cargo run --release --offline --example quickstart

echo "==> benches + repro binary compile"
cargo bench --no-run --offline -p gnn4ip-bench
cargo build --release --offline -p gnn4ip-bench --bin repro

echo "==> ci.sh: all green"
