#!/usr/bin/env bash
# Full verification gate for the gnn4ip workspace, split into named
# stages. Everything resolves from in-repo path crates; no network access
# is required or attempted.
#
# Usage:
#   ./ci.sh                 run every stage, print a timing table at the end
#   ./ci.sh --stage <name>  run exactly one stage (same table, one row)
#   ./ci.sh --list          list stage names
#
# The per-stage wall-clock summary makes suite-runtime regressions
# visible directly in CI output; .github/workflows/ci.yml fans the same
# stages out as matrix jobs.
set -euo pipefail
cd "$(dirname "$0")"

# Guard against test-suite bloat: the non-ignored debug suite must stay
# fast (heavy model-training ablations live behind #[ignore] and run in
# the heavy stage below).
TIER1_TIMEOUT="${TIER1_TIMEOUT:-240}"

STAGES=(build tier1 workspace heavy fmt clippy doc examples audit serve service corpus analysis benches)

stage_build() {
    cargo build --release --offline
}

stage_tier1() {
    cargo test -q --offline --no-run
    timeout "${TIER1_TIMEOUT}" cargo test -q --offline
}

stage_workspace() {
    cargo test -q --offline --workspace
}

stage_heavy() {
    cargo test -q --release --offline -- --ignored
}

stage_fmt() {
    cargo fmt --check
}

stage_clippy() {
    cargo clippy --workspace --all-targets --offline -- -D warnings
}

stage_doc() {
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
}

stage_examples() {
    cargo build --offline --examples
    cargo run --release --offline --example quickstart
}

stage_audit() {
    # corpus-scale audit pipeline on the synthetic corpus: streaming
    # ingest, recall harness, and shard-index persistence round-trip
    cargo run --release --offline --example audit_pipeline -- --designs 300 --variants 2
}

stage_serve() {
    # the concurrent serving path under the release profile: N reader
    # threads auditing published snapshots while a writer ingests, plus
    # the pruning/parallel-query bit-identity proptests
    cargo test -q --release --offline -p gnn4ip-core concurrent_readers
    cargo test -q --release --offline --test properties -- sharded pruned
}

stage_service() {
    # the audit service surface: every serve-loop protocol/backpressure
    # test (bounded queue, ordered responses, publish visibility, dot
    # escaping) and the batched-vs-serial bit-identity proptest
    cargo test -q --release --offline -p gnn4ip-core service::
    cargo test -q --release --offline --test properties -- batched
}

stage_corpus() {
    # corpus-scale retrieval smoke at 100k rows: IVF rebalance routing,
    # int8 quantized shards, and append-only checkpoints — every
    # bit-identity and incrementality claim is asserted by the harness
    cargo run --release --offline --example corpus_scale -- --rows 100000
}

stage_analysis() {
    # g4check: line lints, the cross-file graph rules (lock discipline,
    # cast truncation, float determinism, panic reachability, and the
    # interprocedural taint rules — see RULES.md), and the loom-lite
    # exhaustive interleaving checks. The
    # scan covers src/, examples/, tests/, and benches/ alike. The JSON
    # report is kept as a build artifact; exit code 1 means findings,
    # anything else from the binary is an infrastructure failure.
    cargo build --release --offline -p gnn4ip-analysis --bin g4check
    mkdir -p target
    local rc=0
    ./target/release/g4check --json all >target/g4check-report.json || rc=$?
    if [[ "$rc" -eq 0 ]]; then
        echo "analysis: clean ($(sed -n 's/.*"files_scanned": \([0-9]*\).*/\1/p' \
            target/g4check-report.json) files scanned)"
        return 0
    fi
    if [[ "$rc" -eq 1 ]]; then
        echo "analysis: violations found — target/g4check-report.json" >&2
        # pretty-print each violation line out of the JSON report
        sed -n 's/^    {"rule": "\([^"]*\)", "path": "\([^"]*\)", "line": \([0-9]*\).*/  [\1] \2:\3/p' \
            target/g4check-report.json >&2
        return 1
    fi
    echo "analysis: g4check infrastructure failure (exit ${rc})" >&2
    return "$rc"
}

stage_benches() {
    cargo bench --no-run --offline -p gnn4ip-bench
    cargo build --release --offline -p gnn4ip-bench --bin repro
}

TIMING_NAMES=()
TIMING_SECS=()

run_stage() {
    local name="$1"
    echo "==> stage: ${name}"
    local start end
    start=$(date +%s)
    "stage_${name}"
    end=$(date +%s)
    TIMING_NAMES+=("${name}")
    TIMING_SECS+=($((end - start)))
}

print_timing_table() {
    local total=0
    echo
    echo "==> stage timing summary"
    printf '%-12s %10s\n' "stage" "seconds"
    printf '%-12s %10s\n' "-----" "-------"
    for i in "${!TIMING_NAMES[@]}"; do
        printf '%-12s %10d\n' "${TIMING_NAMES[$i]}" "${TIMING_SECS[$i]}"
        total=$((total + TIMING_SECS[i]))
    done
    printf '%-12s %10d\n' "total" "${total}"
}

case "${1:-}" in
--list)
    printf '%s\n' "${STAGES[@]}"
    exit 0
    ;;
--stage)
    requested="${2:?usage: ci.sh --stage <name>}"
    found=0
    for s in "${STAGES[@]}"; do
        [[ "$s" == "$requested" ]] && found=1
    done
    if [[ "$found" -ne 1 ]]; then
        echo "unknown stage '${requested}'; stages: ${STAGES[*]}" >&2
        exit 2
    fi
    run_stage "$requested"
    print_timing_table
    echo "==> ci.sh: stage ${requested} green"
    exit 0
    ;;
"") ;;
*)
    echo "unknown argument '$1'; usage: ci.sh [--stage <name>|--list]" >&2
    exit 2
    ;;
esac

for s in "${STAGES[@]}"; do
    run_stage "$s"
done
print_timing_table
echo "==> ci.sh: all green"
