//! Quickstart: the paper's Fig. 1 motivating example.
//!
//! Two full-adder codings — behavioral RTL and a gate-level netlist — have
//! visibly different source code and different data-flow graphs, yet are the
//! same design. We extract both DFGs, train a tiny detector on a small
//! corpus, and ask it whether the adder pair is piracy.
//!
//! Run with: `cargo run --release --example quickstart`

use gnn4ip::data::{Corpus, CorpusSpec};
use gnn4ip::dfg::graph_from_verilog;
use gnn4ip::nn::{Hw2VecConfig, TrainConfig};
use gnn4ip::{run_experiment, Gnn4Ip};

const ADDER_RTL: &str = "
module ADDER(input Num1, input Num2, input Cin,
             output reg Sum, output reg Cout);
  always @(Num1, Num2, Cin) begin
    Sum <= ((Num1 ^ Num2) ^ Cin);
    Cout <= (((Num1 ^ Num2) && Cin) || (Num1 && Num2));
  end
endmodule";

const ADDER_GATES: &str = "
module ADDER(Num1, Num2, Cin, Sum, Cout);
  input Num1, Num2, Cin;
  output Sum, Cout;
  wire t1, t2, t3;
  xor (t1, Num1, Num2);
  and (t2, Num1, Num2);
  and (t3, t1, Cin);
  xor (Sum, t1, Cin);
  or (Cout, t3, t2);
endmodule";

const UNRELATED: &str = "
module counter(input clk, input rst, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'd0;
    else q <= q + 8'd1;
  end
endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. DFG extraction (Fig. 2 pipeline) — same design, different topology.
    let g_rtl = graph_from_verilog(ADDER_RTL, None)?;
    let g_gates = graph_from_verilog(ADDER_GATES, None)?;
    println!("Fig. 1 adders as data-flow graphs:");
    println!(
        "  RTL coding:   {:>3} nodes, {:>3} edges, roots {:?}",
        g_rtl.node_count(),
        g_rtl.edge_count(),
        g_rtl.roots().len()
    );
    println!(
        "  gate coding:  {:>3} nodes, {:>3} edges, roots {:?}",
        g_gates.node_count(),
        g_gates.edge_count(),
        g_gates.roots().len()
    );

    // 2. Train a small detector so embeddings are meaningful.
    println!("\nTraining a detector on a small generated corpus ...");
    let corpus = Corpus::build(&CorpusSpec::rtl_small())?;
    let outcome = run_experiment(
        &corpus,
        Hw2VecConfig::default(),
        &TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 0.01,
            ..TrainConfig::default()
        },
        150,
        42,
    );
    println!(
        "  test accuracy {:.1}% at tuned delta {:+.3}",
        100.0 * outcome.test_accuracy,
        outcome.delta
    );
    let detector: Gnn4Ip = outcome.detector;

    // 3. Ask Algorithm 1 about the adder pair and an unrelated pair.
    let same = detector.check(ADDER_RTL, ADDER_GATES)?;
    let diff = detector.check(ADDER_RTL, UNRELATED)?;
    println!(
        "\ngnn4ip(adder_rtl, adder_gates): score {:+.4} -> {}",
        same.score,
        if same.piracy { "PIRACY" } else { "no piracy" }
    );
    println!(
        "gnn4ip(adder_rtl, counter):     score {:+.4} -> {}",
        diff.score,
        if diff.piracy { "PIRACY" } else { "no piracy" }
    );
    println!(
        "\nThe two adder codings score {}, the unrelated pair scores lower — \
         similarity survives the coding change, as Fig. 1 argues.",
        if same.score > diff.score {
            "higher"
        } else {
            "UNEXPECTEDLY lower"
        }
    );
    Ok(())
}
