//! Corpus-scale retrieval harness: IVF-routed shard pruning, int8
//! quantized shards, and append-only checkpoints, measured end to end on
//! a synthetic million-design-class corpus.
//!
//! The corpus is deliberately adversarial to the sharded index's bound
//! pruning: rows belong to well-separated clusters but arrive
//! round-robin, so every sealed shard contains every cluster and no
//! bound can exclude anything. The harness then measures what each of
//! the three corpus-scale mechanisms buys:
//!
//! 1. `rebalance` regroups the sealed rows into centroid-aligned shards
//!    and pruning starts working — routed p50 vs exhaustive p50 is
//!    reported before and after, on clustered *and* uniform data (the
//!    latter bounds the overhead routing adds when it cannot help).
//! 2. `ShardStorage::Int8` shrinks sealed rows to ~1/4 the bytes while
//!    the shortlist-rescoring scan stays bit-identical to the exact
//!    dequantize-and-score walk (asserted over every query).
//! 3. `checkpoint_dir` writes content-addressed shard files once: the
//!    second checkpoint after ingesting more rows re-writes only the
//!    newly sealed shards (asserted), and `load_dir` answers queries
//!    identically to the writer (asserted).
//!
//! All data is generated from splitmix64 — no RNG state, so every run
//! (and every machine) sees the same corpus. Timing numbers are printed
//! for the baseline record; correctness claims are asserted.
//!
//! Run with: `cargo run --release --example corpus_scale [-- --rows N --dim D --cap C --clusters K --queries Q]`
//! (defaults: 100_000 rows, dim 32, shard capacity 2048, 16 clusters,
//! 32 queries). The 1M baseline run uses `--rows 1000000 --cap 4096`.

use std::time::Instant;

use gnn4ip::eval::{
    QueryHit, QueryOptions, QueryStats, RebalanceOptions, ShardStorage, ShardedEmbeddingIndex,
};

/// Arbitrary stand-in for a detector-weights checksum pin.
const PIN: u64 = 0x00C0_FFEE_1234_5678;

fn arg_value(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-uniform value in `[-1, 1)` for a (salt, i, j)
/// coordinate.
fn coord(salt: u64, i: u64, j: u64) -> f32 {
    let h = splitmix64(salt ^ splitmix64(i ^ splitmix64(j)));
    ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

fn cluster_center(c: usize, dim: usize) -> Vec<f32> {
    (0..dim).map(|j| coord(1, c as u64, j as u64)).collect()
}

/// Row `i` of the clustered corpus: its cluster center plus small noise.
/// Cluster membership is `i % clusters` — round-robin arrival, the worst
/// case for bound pruning.
fn clustered_row(i: usize, dim: usize, clusters: usize) -> Vec<f32> {
    let center = cluster_center(i % clusters, dim);
    (0..dim)
        .map(|j| center[j] + 0.05 * coord(2, i as u64, j as u64))
        .collect()
}

fn uniform_row(i: usize, dim: usize) -> Vec<f32> {
    (0..dim).map(|j| coord(3, i as u64, j as u64)).collect()
}

/// Query `q` probes cluster `q % clusters` with fresh noise.
fn clustered_query(q: usize, dim: usize, clusters: usize) -> Vec<f32> {
    let center = cluster_center(q % clusters, dim);
    (0..dim)
        .map(|j| center[j] + 0.05 * coord(4, q as u64, j as u64))
        .collect()
}

fn build(
    rows: usize,
    dim: usize,
    cap: usize,
    storage: ShardStorage,
    gen: impl Fn(usize) -> Vec<f32>,
) -> (ShardedEmbeddingIndex, f64) {
    let mut index = ShardedEmbeddingIndex::with_storage(dim, cap, storage);
    let start = Instant::now();
    for i in 0..rows {
        index.insert(&gen(i), i);
    }
    (index, start.elapsed().as_secs_f64())
}

/// Runs every query through `query_opts`, returning the per-query hit
/// lists, the p50 latency in milliseconds, and summed stats.
fn run_queries(
    index: &ShardedEmbeddingIndex,
    queries: &[Vec<f32>],
    k: usize,
    opts: &QueryOptions,
) -> (Vec<Vec<QueryHit>>, f64, QueryStats) {
    let mut hits = Vec::with_capacity(queries.len());
    let mut times = Vec::with_capacity(queries.len());
    let mut total = QueryStats::default();
    for q in queries {
        let start = Instant::now();
        let (h, stats) = index.query_opts(q, k, opts);
        times.push(start.elapsed().as_secs_f64() * 1e3);
        hits.push(h);
        total.sealed_shards += stats.sealed_shards;
        total.sealed_probed += stats.sealed_probed;
        total.sealed_pruned += stats.sealed_pruned;
        total.rows_scanned += stats.rows_scanned;
        total.rows_rescored += stats.rows_rescored;
    }
    times.sort_by(f64::total_cmp);
    (hits, times[times.len() / 2], total)
}

fn assert_bitwise_equal(a: &[Vec<QueryHit>], b: &[Vec<QueryHit>], what: &str) {
    // rebalance moves storage positions (`index`) but preserves the
    // (label, score) identity of every hit; labels are unique here.
    let key = |hs: &[Vec<QueryHit>]| -> Vec<(usize, u32)> {
        hs.iter()
            .flatten()
            .map(|h| (h.label, h.score.to_bits()))
            .collect()
    };
    assert_eq!(key(a), key(b), "{what}: results diverged");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let rows = arg_value(&args, "--rows", 100_000);
    let dim = arg_value(&args, "--dim", 32);
    let cap = arg_value(&args, "--cap", 2048);
    let clusters = arg_value(&args, "--clusters", 16);
    let n_queries = arg_value(&args, "--queries", 32);
    let k = arg_value(&args, "--k", 10);

    // Single-threaded scans keep the p50s honest on small CI machines;
    // routing and quantization wins are orthogonal to the fan-out.
    let exhaustive = QueryOptions {
        prune: false,
        threads: 1,
        parallel_min_rows: usize::MAX,
        int8_scan: false,
    };
    let routed = QueryOptions {
        prune: true,
        int8_scan: true,
        ..exhaustive
    };

    println!("corpus-scale retrieval: {rows} rows x dim {dim}, shard capacity {cap}, {clusters} clusters, {n_queries} queries, k={k}\n");

    // ---- 1. IVF routing on the clustered corpus -----------------------
    let (mut index, ingest_secs) = build(rows, dim, cap, ShardStorage::F32, |i| {
        clustered_row(i, dim, clusters)
    });
    println!(
        "ingest (f32): {rows} rows in {ingest_secs:.2} s ({:.0} rows/s), {} sealed shards",
        rows as f64 / ingest_secs.max(1e-9),
        index.num_sealed_shards()
    );

    let queries: Vec<Vec<f32>> = (0..n_queries)
        .map(|q| clustered_query(q, dim, clusters))
        .collect();

    let (hits_ex, p50_ex, _) = run_queries(&index, &queries, k, &exhaustive);
    let (hits_before, p50_before, st_before) = run_queries(&index, &queries, k, &routed);
    assert_bitwise_equal(
        &hits_ex,
        &hits_before,
        "routed-before-rebalance vs exhaustive",
    );
    println!(
        "clustered, round-robin arrival: exhaustive p50 {p50_ex:.3} ms, routed p50 {p50_before:.3} ms \
         ({}/{} shard probes pruned — scattered shards defeat the bounds)",
        st_before.sealed_pruned, st_before.sealed_shards
    );

    let start = Instant::now();
    let report = index.rebalance(&RebalanceOptions::default());
    let rebalance_secs = start.elapsed().as_secs_f64();
    println!(
        "rebalance: {} rows -> {} centroid-aligned shards in {rebalance_secs:.2} s ({} rows moved)",
        report.sealed_rows, report.centroids, report.moved
    );

    let (hits_ex2, p50_ex2, _) = run_queries(&index, &queries, k, &exhaustive);
    let (hits_after, p50_after, st_after) = run_queries(&index, &queries, k, &routed);
    assert_bitwise_equal(
        &hits_ex2,
        &hits_after,
        "routed-after-rebalance vs exhaustive",
    );
    assert_bitwise_equal(&hits_ex, &hits_ex2, "exhaustive before vs after rebalance");
    let speedup = p50_ex2 / p50_after.max(1e-9);
    println!(
        "clustered, after rebalance: exhaustive p50 {p50_ex2:.3} ms, routed p50 {p50_after:.3} ms \
         ({speedup:.1}x, {}/{} shard probes pruned)\n",
        st_after.sealed_pruned, st_after.sealed_shards
    );
    assert!(
        st_after.sealed_pruned * 2 > st_after.sealed_shards,
        "rebalanced clustered corpus should prune over half its shard probes"
    );

    // ---- 2. routing overhead on uniform data --------------------------
    let (uniform_index, _) = build(rows, dim, cap, ShardStorage::F32, |i| uniform_row(i, dim));
    let uqueries: Vec<Vec<f32>> = (0..n_queries).map(|q| uniform_row(rows + q, dim)).collect();
    let (uh_ex, up50_ex, _) = run_queries(&uniform_index, &uqueries, k, &exhaustive);
    let (uh_rt, up50_rt, ust) = run_queries(&uniform_index, &uqueries, k, &routed);
    assert_bitwise_equal(&uh_ex, &uh_rt, "uniform routed vs exhaustive");
    println!(
        "uniform corpus (pruning cannot help): exhaustive p50 {up50_ex:.3} ms, routed p50 {up50_rt:.3} ms \
         ({:+.1}% overhead, {}/{} pruned)\n",
        100.0 * (up50_rt / up50_ex.max(1e-9) - 1.0),
        ust.sealed_pruned,
        ust.sealed_shards
    );

    // ---- 3. int8 quantized shards --------------------------------------
    let (mut q_index, q_ingest_secs) = build(rows, dim, cap, ShardStorage::Int8, |i| {
        clustered_row(i, dim, clusters)
    });
    q_index.rebalance(&RebalanceOptions::default());
    let ratio = q_index.sealed_row_bytes() as f64 / index.sealed_row_bytes() as f64;
    println!(
        "int8 shards: ingest {q_ingest_secs:.2} s, sealed row bytes {} vs {} f32 ({:.0}% of f32)",
        q_index.sealed_row_bytes(),
        index.sealed_row_bytes(),
        100.0 * ratio
    );
    assert!(
        ratio <= 0.30,
        "int8 sealed rows must be at most 30% of f32 bytes, got {ratio:.2}"
    );
    let exact = QueryOptions {
        int8_scan: false,
        ..routed
    };
    let (qh_exact, qp50_exact, _) = run_queries(&q_index, &queries, k, &exact);
    let (qh_int8, qp50_int8, qst) = run_queries(&q_index, &queries, k, &routed);
    assert_bitwise_equal(
        &qh_exact,
        &qh_int8,
        "int8 shortlist rescoring vs exact walk",
    );
    println!(
        "int8 scan: exact-walk p50 {qp50_exact:.3} ms, int8+rescore p50 {qp50_int8:.3} ms, \
         {} of {} scanned rows needed f32 rescoring (bit-identical results)\n",
        qst.rows_rescored, qst.rows_scanned
    );

    // ---- 4. append-only checkpoints ------------------------------------
    let dir = std::env::temp_dir().join(format!("g4ip-corpus-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let first = index.checkpoint_dir(&dir, PIN)?;
    println!(
        "checkpoint #1: {} shards written ({} bytes + {} manifest)",
        first.shards_written, first.bytes_written, first.manifest_bytes
    );
    let sealed_before = index.num_sealed_shards();
    let grow = (rows / 10).max(cap + 1);
    for i in 0..grow {
        index.insert(&clustered_row(rows + i, dim, clusters), rows + i);
    }
    let newly_sealed = index.num_sealed_shards() - sealed_before;
    let second = index.checkpoint_dir(&dir, PIN)?;
    println!(
        "checkpoint #2 after +{grow} rows: {} shards reused, {} written ({} bytes + {} manifest)",
        second.shards_reused, second.shards_written, second.bytes_written, second.manifest_bytes
    );
    assert_eq!(
        second.shards_reused, first.shards_written,
        "every previously sealed shard must be reused byte-free"
    );
    assert_eq!(
        second.shards_written, newly_sealed,
        "the second checkpoint must write only the newly sealed shards"
    );
    let loaded = ShardedEmbeddingIndex::load_dir(&dir, PIN)?;
    let (lh, _, _) = run_queries(&loaded, &queries, k, &routed);
    let (wh, _, _) = run_queries(&index, &queries, k, &routed);
    assert_bitwise_equal(&lh, &wh, "loaded checkpoint vs writer index");
    println!(
        "reload: {} rows, {} sealed shards, queries bit-identical to the writer",
        loaded.len(),
        loaded.num_sealed_shards()
    );
    std::fs::remove_dir_all(&dir)?;

    println!("\ncorpus-scale harness green: routing {speedup:.1}x on clustered data, int8 at {:.0}% bytes, incremental checkpoints O(new rows).", 100.0 * ratio);
    Ok(())
}
