//! IP-audit scenario: screen a portfolio of incoming designs against a
//! library of owned IP (the deployment the paper's introduction motivates —
//! "the manual review of hardware design is not feasible in practice").
//!
//! **Train once, then load.** The first run trains a detector with the
//! checkpointing v2 engine, embeds the owned IP cores, and persists the
//! binary artifacts (detector + embedding library of the owned cores)
//! under `target/artifacts/ip_audit/`; every later run loads them in
//! milliseconds and reproduces the same scores bit for bit — no
//! retraining, no re-embedding. Delete the directory to retrain.
//!
//! Run with: `cargo run --release --example ip_audit`

use std::path::Path;

use gnn4ip::data::{named_rtl_designs, vary_design, Corpus, CorpusSpec, VariationConfig};
use gnn4ip::eval::EmbeddingIndex;
use gnn4ip::nn::{EngineConfig, Hw2VecConfig, TrainConfig};
use gnn4ip::{run_training_pipeline, Gnn4Ip};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let artifact_dir = Path::new("target/artifacts/ip_audit");
    let detector_path = artifact_dir.join("detector.bin");
    let library_path = artifact_dir.join("library.bin");

    let detector = if detector_path.exists() {
        let t0 = std::time::Instant::now();
        let mut d = Gnn4Ip::load(&detector_path)?;
        let n = d.load_library(&library_path)?;
        println!(
            "Loaded trained detector + {n}-entry embedding library from {} in {:.1} ms \
             (delete the directory to retrain).\n",
            artifact_dir.display(),
            t0.elapsed().as_secs_f64() * 1e3
        );
        d
    } else {
        println!("No saved artifacts; training the audit detector once ...");
        // a broader corpus than the quickstart's: 16 designs, medium size, so
        // the embedding space discriminates out-of-distribution cores too
        let spec = CorpusSpec {
            n_designs: 16,
            instances_per_design: 4,
            size: gnn4ip::data::SynthSize::Medium,
            ..CorpusSpec::rtl_small()
        };
        let corpus = Corpus::build(&spec)?;
        let engine = EngineConfig {
            train: TrainConfig {
                epochs: 30,
                batch_size: 32,
                lr: 0.005,
                ..TrainConfig::default()
            },
            schedule: gnn4ip::nn::LrSchedule::CosineAnneal { min_lr: 5e-4 },
            // checkpoint mid-training: a killed run resumes instead of
            // starting over
            checkpoint_every: 5,
            ..EngineConfig::default()
        };
        let (outcome, artifacts) = run_training_pipeline(
            &corpus,
            Hw2VecConfig::default(),
            engine,
            400,
            7,
            artifact_dir,
        )?;
        println!(
            "  trained: accuracy {:.1}%, delta {:+.3}; artifacts saved to {}\n",
            100.0 * outcome.test_accuracy,
            outcome.delta,
            artifacts.detector.parent().expect("dir").display()
        );
        // the pipeline cached the training corpus; this audit screens
        // against the owned cores only, so persist a library of those
        let d = outcome.detector;
        d.clear_cache();
        d
    };

    // The IP library we own: named cores embedded once, in one batch —
    // a warm start serves all of them from the loaded library artifact.
    let library: Vec<_> = named_rtl_designs()
        .into_iter()
        .filter(|d| ["fpa", "aes", "crc8", "hamming", "barrel"].contains(&d.name.as_str()))
        .collect();
    let owned: Vec<(&str, Option<&str>)> = library
        .iter()
        .map(|d| (d.source.as_str(), Some(d.top.as_str())))
        .collect();
    let embeddings = detector.embed_many(&owned)?;
    let owned_stats = detector.cache_stats();
    if owned_stats.misses > 0 {
        // first run: the cache just embedded the owned cores — persist
        // them so later runs never re-embed
        detector.save_library(&library_path)?;
    }
    let mut index = EmbeddingIndex::new(embeddings[0].len());
    for (label, e) in embeddings.iter().enumerate() {
        index.insert(e, label);
    }
    println!(
        "IP library indexed: {:?} ({} embeddings, one batched pass)\n",
        library.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
        index.len()
    );

    // Incoming portfolio: two disguised copies + two clean designs.
    let fpa = library.iter().find(|d| d.name == "fpa").expect("fpa");
    let crc = library.iter().find(|d| d.name == "crc8").expect("crc8");
    let disguised_fpa = vary_design(&fpa.source, 1234, &VariationConfig::default())?;
    let disguised_crc = vary_design(&crc.source, 4321, &VariationConfig::default())?;
    // clean designs: real cores we do NOT own (never registered)
    let seven_seg = named_rtl_designs()
        .into_iter()
        .find(|d| d.name == "seven_seg")
        .expect("seven_seg");
    let uart = named_rtl_designs()
        .into_iter()
        .find(|d| d.name == "rs232")
        .expect("rs232");
    let incoming = [
        ("vendor_fp_unit.v", disguised_fpa.as_str(), Some("fpa")),
        ("vendor_checksum.v", disguised_crc.as_str(), Some("crc8")),
        (
            "display_decoder.v",
            seven_seg.source.as_str(),
            Some("seven_seg"),
        ),
        ("uart_core.v", uart.source.as_str(), Some("rs232")),
    ];

    println!(
        "{:<22} {:<12} {:>8}   verdict",
        "incoming file", "best match", "score"
    );
    println!("{}", "-".repeat(58));
    for (fname, src, top) in incoming {
        let suspect = detector.hw2vec(src, top)?;
        let best = index.query(&suspect, 1)[0];
        println!(
            "{fname:<22} {:<12} {:>+8.4}   {}",
            library[best.label].name,
            best.score,
            if best.score > detector.delta() {
                "FLAG: possible piracy"
            } else {
                "clear"
            }
        );
    }

    // A vendor resubmits the same checksum file (new comments only): the
    // content-addressed cache answers without re-parsing or re-embedding.
    let before = detector.cache_stats();
    let resubmitted = format!("// resubmission, rev B\n{disguised_crc}");
    let again = detector.hw2vec(&resubmitted, Some("crc8"))?;
    let best = index.query(&again, 1)[0];
    let after = detector.cache_stats();
    println!(
        "\nResubmitted vendor_checksum.v: best match {} ({:+.4}), served from cache \
         ({} -> {} hits, {} designs embedded total, hit rate {:.0}%).",
        library[best.label].name,
        best.score,
        before.hits,
        after.hits,
        after.entries,
        100.0 * after.hit_rate()
    );
    println!(
        "Disguised copies surface their originals as best match with near-1 scores; \
         unowned designs score visibly lower (delta = {:+.3}).",
        detector.delta()
    );
    Ok(())
}
