//! Corpus-scale audit pipeline: stream a synthetic design corpus into the
//! sharded embedding index, then audit disguised variants against it and
//! report retrieval recall.
//!
//! This is the scenario-diversity harness of the deployment story: the
//! corpus designs are ingested once (parse → DFG → batched embed →
//! shard-insert, with bounded memory per batch), then every design is
//! disguised with the behaviour-preserving transforms — `vary_design` for
//! RTL, `obfuscate_netlist` for gate-level netlists — and audited. A
//! healthy pipeline retrieves the true source design at rank 1 for almost
//! every disguise. The filled index is persisted through the `G4IP`
//! binary artifact format (pinned to the detector weights) and reloaded
//! to prove warm starts skip re-embedding the corpus. Finally, the
//! read-mostly serving path is demonstrated: an immutable snapshot keeps
//! answering (identically) while the writer ingests more designs, and
//! the query stats show how much of the corpus bound-pruning skipped.
//!
//! Run with: `cargo run --release --example audit_pipeline [-- --designs N --variants V]`
//! (defaults: 1000 designs, 2 variants each).

use std::path::Path;

use gnn4ip::{run_audit_scenarios, AuditConfig, AuditPipeline, Gnn4Ip, ScenarioSpec};

fn arg_value(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn print_report(title: &str, r: &gnn4ip::ScenarioReport) {
    println!("{title}");
    println!(
        "  ingested {}/{} designs in {:.2} s ({:.0} designs/s){}",
        r.ingested,
        r.designs,
        r.ingest_secs,
        r.ingested as f64 / r.ingest_secs.max(1e-9),
        if r.rejected > 0 {
            format!(", {} rejected", r.rejected)
        } else {
            String::new()
        }
    );
    println!(
        "  audited  {} disguised variants in {:.2} s ({:.0} audits/s)",
        r.variants_audited,
        r.audit_secs,
        r.variants_audited as f64 / r.audit_secs.max(1e-9),
    );
    println!(
        "  recall@1 {:.1}%   recall@{} {:.1}%   mean top score {:+.4}\n",
        100.0 * r.recall_at_1,
        r.k,
        100.0 * r.recall_at_k,
        r.mean_top_score
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n_designs = arg_value(&args, "--designs", 1000);
    let variants = arg_value(&args, "--variants", 2);

    let detector = Gnn4Ip::with_seed(7);
    let config = AuditConfig::default();
    let mut pipeline = AuditPipeline::new(detector, config.clone());
    println!(
        "Audit pipeline: shard capacity {}, ingest batch {}, top-{} verdicts\n",
        config.shard_capacity, config.batch_size, config.top_k
    );

    // Scenario 1 — RTL corpus (named cores + synthetic fill), source-level
    // variation as the disguise.
    let rtl = run_audit_scenarios(&mut pipeline, &ScenarioSpec::rtl(n_designs, variants))?;
    print_report(
        &format!("[rtl] {n_designs} designs x {variants} vary_design variants"),
        &rtl,
    );
    println!(
        "  index: {} embeddings in {} shards",
        pipeline.index().len(),
        pipeline.index().num_shards()
    );
    println!(
        "  (corpora beyond the {} named cores are synthetic fill; families there are\n   \
         near-duplicates of each other, so rank-1 misses at scale are mostly\n   \
         intra-family confusions — the top score stays ~1.0 either way)\n",
        gnn4ip::data::named_rtl_designs().len()
    );

    // Scenario 2 — gate-level netlists, TrustHub-style obfuscation as the
    // disguise, streamed into the same pipeline (labels keep growing).
    let nl_designs = (n_designs / 20).clamp(6, 50);
    let netlist = run_audit_scenarios(&mut pipeline, &ScenarioSpec::netlist(nl_designs, variants))?;
    print_report(
        &format!("[netlist] {nl_designs} netlists x {variants} obfuscate_netlist variants"),
        &netlist,
    );

    // Persistence — save the filled index, reload it into a fresh pipeline
    // around the same weights, and prove the warm start serves identical
    // verdicts without re-embedding anything.
    let artifact_dir = Path::new("target/artifacts/audit_pipeline");
    std::fs::create_dir_all(artifact_dir)?;
    let index_path = artifact_dir.join("audit-index.bin");
    pipeline.save_index(&index_path)?;
    let bytes = std::fs::metadata(&index_path)?.len();
    let t0 = std::time::Instant::now();
    let mut warm = AuditPipeline::new(
        Gnn4Ip::from_bytes(&pipeline.detector().to_bytes()).map_err(std::io::Error::other)?,
        config,
    );
    let restored = warm
        .load_index(&index_path)
        .map_err(std::io::Error::other)?;
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let suspect = gnn4ip::data::named_rtl_designs()
        .into_iter()
        .find(|d| d.name == "crc8")
        .expect("crc8 exists");
    let cold = pipeline.audit(&suspect.source, Some(&suspect.top))?;
    let hot = warm.audit(&suspect.source, Some(&suspect.top))?;
    assert_eq!(cold, hot, "reloaded index must serve identical verdicts");
    println!(
        "[persistence] {restored} embeddings reloaded from {} ({:.1} KiB) in {load_ms:.1} ms; \
         verdicts identical bit for bit",
        index_path.display(),
        bytes as f64 / 1024.0
    );
    println!(
        "  suspect 'crc8' -> best match '{}' ({:+.4})",
        hot.best().expect("non-empty").name,
        hot.best().expect("non-empty").score
    );

    // Concurrent serving — freeze a snapshot, keep ingesting into the
    // pipeline, and show the snapshot's verdicts are (a) isolated from
    // the writer and (b) bit-identical to what the pipeline answered at
    // snapshot time. Sealed shards are Arc-shared, so the snapshot cost
    // is one tail copy, not a corpus copy.
    let snapshot = pipeline.snapshot();
    let frozen = snapshot.audit(&suspect.source, Some(&suspect.top))?;
    let more = run_audit_scenarios(&mut pipeline, &ScenarioSpec::rtl(nl_designs, 1))?;
    let after = snapshot.audit(&suspect.source, Some(&suspect.top))?;
    assert_eq!(frozen, after, "snapshot verdicts must be immutable");
    println!(
        "\n[serving] snapshot of {} designs kept serving identical verdicts \
         while the writer ingested {} more (pipeline now {} designs)",
        snapshot.len(),
        more.ingested,
        pipeline.len()
    );

    // Query anatomy — how much work the default query options skipped.
    let emb = pipeline
        .detector()
        .hw2vec(&suspect.source, Some(&suspect.top))?;
    let (_, stats) = pipeline.index().query_opts(
        &emb,
        pipeline.config().top_k,
        &gnn4ip::eval::QueryOptions::default(),
    );
    println!(
        "  query anatomy: {} sealed shards, {} pruned by centroid/radius \
         bounds, {} of {} rows scanned{}",
        stats.sealed_shards,
        stats.sealed_pruned,
        stats.rows_scanned,
        pipeline.index().len(),
        if stats.parallel {
            ", parallel scan"
        } else {
            ""
        }
    );
    println!(
        "  (untrained embeddings cluster tightly, so bounds overlap and \
         pruning is modest here;\n   the audit_pipeline bench's clustered \
         corpus shows the >=50% shard-skip case)"
    );
    Ok(())
}
