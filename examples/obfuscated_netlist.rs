//! Obfuscation-resilience scenario (the Table III experiment in miniature).
//!
//! A foundry-side adversary steals the `c880`-class ALU netlist, obfuscates
//! it (gate decomposition, buffer chains, dummy key-guarded logic, wire
//! renaming), and presents it as original work. We train a detector on a
//! netlist corpus and show it still recognizes the original IP inside every
//! obfuscated instance, while clearing genuinely different benchmarks.
//!
//! Run with: `cargo run --release --example obfuscated_netlist`

use gnn4ip::data::{iscas, obfuscate_netlist, Corpus, CorpusSpec, ObfuscationConfig};
use gnn4ip::eval::ScoreTable;
use gnn4ip::nn::{Hw2VecConfig, TrainConfig};
use gnn4ip::run_experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Training on a gate-level netlist corpus ...");
    let corpus = Corpus::build(&CorpusSpec::netlist_small())?;
    let outcome = run_experiment(
        &corpus,
        Hw2VecConfig::default(),
        &TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 0.01,
            ..TrainConfig::default()
        },
        120,
        7,
    );
    println!(
        "  netlist test accuracy {:.1}% (delta {:+.3})",
        100.0 * outcome.test_accuracy,
        outcome.delta
    );
    let detector = outcome.detector;

    // The stolen IP and its obfuscated variants.
    let original = iscas::c880();
    let mut table = ScoreTable::new("c880 vs its obfuscated instances");
    let mut scores = Vec::new();
    for variant in 1..=6u64 {
        let stolen = obfuscate_netlist(&original, variant, &ObfuscationConfig::default())?;
        let v = detector.check_with_tops(&original, Some("c880"), &stolen, Some("c880"))?;
        println!(
            "  obfuscated variant {variant}: score {:+.4} -> {}",
            v.score,
            if v.piracy {
                "PIRACY detected"
            } else {
                "missed!"
            }
        );
        scores.push(v.score);
    }
    table.push("c880 / obfuscated c880", scores);

    // Different benchmarks must score low.
    let mut diff_scores = Vec::new();
    for (name, other) in [
        ("c432", iscas::c432()),
        ("c499", iscas::c499()),
        ("c1908", iscas::c1908()),
    ] {
        let v = detector.check_with_tops(&original, Some("c880"), &other, Some(name))?;
        println!("  c880 vs {name}: score {:+.4}", v.score);
        diff_scores.push(v.score);
    }
    table.push("c880 / different benchmarks", diff_scores);

    println!("\n{}", table.render());
    println!(
        "Obfuscation does not change behaviour, so the DFG embedding stays \
         close to the original — the paper's §IV-E claim."
    );
    Ok(())
}
