//! δ-tuning walkthrough: the ROC view of the decision boundary.
//!
//! §IV-D: "the decision boundary is controlled by a hyper-parameter δ. We
//! have tuned the δ to achieve maximum accuracy, but the user can adjust it
//! to decide how much similarity is considered piracy." This example trains
//! a detector, prints the ROC curve of the held-out scores, the AUC, and a
//! small table of candidate δ settings with their precision/recall
//! trade-offs.
//!
//! Run with: `cargo run --release --example delta_tuning`

use gnn4ip::data::{Corpus, CorpusSpec};
use gnn4ip::eval::{auc, roc_curve, ConfusionMatrix};
use gnn4ip::nn::{Hw2VecConfig, TrainConfig};
use gnn4ip::run_experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Training a detector ...");
    let corpus = Corpus::build(&CorpusSpec::rtl_small())?;
    let outcome = run_experiment(
        &corpus,
        Hw2VecConfig::default(),
        &TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 0.01,
            ..TrainConfig::default()
        },
        200,
        3,
    );
    let scores: Vec<f32> = outcome.test_scores.iter().map(|(s, _)| *s).collect();
    let labels: Vec<bool> = outcome.test_scores.iter().map(|(_, l)| *l).collect();

    println!(
        "\nheld-out AUC: {:.4}  (accuracy-optimal delta: {:+.3})",
        auc(&scores, &labels),
        outcome.delta
    );

    // Down-sampled ROC curve
    let curve = roc_curve(&scores, &labels);
    println!("\nROC curve (sampled):");
    println!("  threshold     TPR     FPR");
    let step = (curve.len() / 12).max(1);
    for p in curve.iter().step_by(step) {
        println!("  {:+9.3}  {:6.3}  {:6.3}", p.threshold, p.tpr, p.fpr);
    }

    // What different delta policies buy you
    println!("\ndelta policies:");
    println!(
        "  {:<28} {:>7} {:>10} {:>8}",
        "policy", "delta", "precision", "recall"
    );
    for (policy, delta) in [
        ("strict (few false alarms)", 0.95f32),
        ("accuracy-optimal (tuned)", outcome.delta),
        ("lenient (catch everything)", 0.2),
    ] {
        let cm = ConfusionMatrix::from_scores(&scores, &labels, delta);
        println!(
            "  {policy:<28} {delta:>+7.3} {:>9.1}% {:>7.1}%",
            100.0 * cm.precision(),
            100.0 * cm.recall()
        );
    }
    println!(
        "\nHigher delta -> fewer false alarms but more missed piracy; the \
         tuned value maximizes accuracy on the training split."
    );
    Ok(())
}
