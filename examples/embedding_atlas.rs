//! Embedding-space visualization (the Fig. 4b/4c experiment in miniature).
//!
//! Embeds many instances of two MIPS-style processors — deliberately similar
//! in functionality, different only in design style — with one batched
//! tape-free pass, builds an [`EmbeddingIndex`] over them, and reports
//! retrieval purity plus nearest neighbors before projecting the
//! 16-dimensional hw2vec embeddings to 2-D with PCA and 3-D with t-SNE.
//!
//! Run with: `cargo run --release --example embedding_atlas`

use gnn4ip::data::{designs::processors, vary_design, VariationConfig};
use gnn4ip::dfg::graph_from_verilog;
use gnn4ip::eval::{cluster_separation, pca, tsne, EmbeddingIndex, TsneConfig};
use gnn4ip::nn::{GraphInput, Hw2Vec, Hw2VecConfig, PairLabel, PairSample, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let per_design = 12usize;
    println!("Generating {per_design} instances each of pipeline and single-cycle MIPS ...");
    let mut graphs = Vec::new();
    let mut labels = Vec::new();
    for (label, src, top) in [
        (0usize, processors::mips_pipeline(), "mips_pipeline"),
        (1usize, processors::mips_single(), "mips_single"),
    ] {
        for variant in 0..per_design as u64 {
            let inst = vary_design(&src, variant, &VariationConfig::default())?;
            let g = graph_from_verilog(&inst, Some(top))?;
            graphs.push(GraphInput::from_dfg(&g));
            labels.push(label);
        }
    }

    // Train briefly on the same instances so the embedding space is shaped
    // by the similar/different objective (as the paper's model is).
    println!("Shaping the embedding space with a short training run ...");
    let mut pairs = Vec::new();
    for a in 0..graphs.len() {
        for b in (a + 1)..graphs.len() {
            pairs.push(PairSample {
                a,
                b,
                label: if labels[a] == labels[b] {
                    PairLabel::Similar
                } else {
                    PairLabel::Different
                },
            });
        }
    }
    let mut model = Hw2Vec::new(Hw2VecConfig::default(), 17);
    gnn4ip::nn::train(
        &mut model,
        &graphs,
        &pairs,
        &TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 0.01,
            ..TrainConfig::default()
        },
    );

    // One batched, tape-free pass over all instances.
    let embeddings = model.embed_batch(&graphs);

    // Corpus-scale similarity index: retrieval purity + nearest neighbors.
    let index = EmbeddingIndex::from_embeddings(&embeddings, &labels);
    let p3 = index.precision_at_k(3);
    println!("\nRetrieval precision@3 over the index: {p3:.3} (1.0 = pure neighborhoods)");
    let probe = 0usize; // first pipeline-MIPS instance
    let hits = index.query(&embeddings[probe], 4);
    println!("  nearest neighbors of instance 0 (pipeline-MIPS):");
    for h in hits.iter().filter(|h| h.index != probe).take(3) {
        let name = if h.label == 0 {
            "pipeline-MIPS"
        } else {
            "single-MIPS"
        };
        println!("    #{:<3} {name:<14} cos {:+.4}", h.index, h.score);
    }
    let gram = index.pairwise_similarity();
    let (mut within, mut across, mut nw, mut na) = (0.0f64, 0.0f64, 0usize, 0usize);
    for i in 0..index.len() {
        for j in (i + 1)..index.len() {
            if labels[i] == labels[j] {
                within += gram.get(i, j) as f64;
                nw += 1;
            } else {
                across += gram.get(i, j) as f64;
                na += 1;
            }
        }
    }
    println!(
        "  mean cosine within design {:+.4}, across designs {:+.4} (blocked Gram matrix)",
        within / nw.max(1) as f64,
        across / na.max(1) as f64
    );

    // PCA to 2-D (Fig. 4b)
    let proj = pca(&embeddings, 2);
    println!(
        "\nPCA 2-D projection (explained variance {:.1}% + {:.1}%):",
        100.0 * proj.explained_variance[0],
        100.0 * proj.explained_variance[1]
    );
    println!("  design              pc1        pc2");
    for (i, p) in proj.points.iter().enumerate() {
        let name = if labels[i] == 0 {
            "pipeline-MIPS"
        } else {
            "single-MIPS "
        };
        println!("  {name}  {:+10.4} {:+10.4}", p[0], p[1]);
    }
    let sep_pca = cluster_separation(&proj.points, &labels);
    println!("  cluster separation (PCA): {sep_pca:+.3}");

    // t-SNE to 3-D (Fig. 4c)
    let y = tsne(
        &embeddings,
        &TsneConfig {
            dims: 3,
            perplexity: 8.0,
            iterations: 400,
            ..TsneConfig::default()
        },
    );
    let sep_tsne = cluster_separation(&y, &labels);
    println!("\nt-SNE 3-D projection: cluster separation {sep_tsne:+.3}");
    println!(
        "\nTwo well-separated clusters{} — hw2vec distinguishes the designs \
         even though both are MIPS processors (the Fig. 4 claim).",
        if sep_pca > 0.2 { "" } else { " were NOT found" }
    );
    Ok(())
}
