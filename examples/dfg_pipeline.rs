//! Walk the Fig. 2 DFG generation pipeline phase by phase and export DOT.
//!
//! Shows preprocess → parse → flatten → extract → trim on a small
//! hierarchical design, printing what each phase produced, and emits
//! Graphviz DOT for the final DFG.
//!
//! Run with: `cargo run --example dfg_pipeline`

use gnn4ip::dfg::{extract, trim};
use gnn4ip::hdl::{flatten, lex, parse, preprocess, IncludeMap};

const SRC: &str = "
`define WIDTH 4
// a small hierarchical design with an include-free preprocessor workout
module ha(input a, input b, output s, output c);
  xor (s, a, b);
  and (c, a, b);
endmodule

module top(input [`WIDTH-1:0] x, input [`WIDTH-1:0] y, output [1:0] z);
  wire s0, c0, s1, c1;
  ha h0(.a(x[0]), .b(y[0]), .s(s0), .c(c0));
  ha h1(.a(x[1]), .b(y[1]), .s(s1), .c(c1));
  assign z = {s1 ^ c0, s0};
endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1: preprocess
    let pre = preprocess(SRC, &IncludeMap::new())?;
    println!(
        "[1] preprocess: {} chars -> {} chars (comments/macros resolved)",
        SRC.len(),
        pre.len()
    );

    // Phase 2: parse
    let tokens = lex(&pre)?;
    let unit = parse(&pre)?;
    println!(
        "[2] parse: {} tokens -> {} modules ({:?})",
        tokens.len(),
        unit.modules.len(),
        unit.modules
            .iter()
            .map(|m| m.name.as_str())
            .collect::<Vec<_>>()
    );

    // Phase 2b: flatten the hierarchy
    let flat = flatten(&unit, "top")?;
    println!(
        "[3] flatten: 'top' now has {} items, no instances",
        flat.items.len()
    );

    // Phase 3+4: data-flow analysis + merge
    let mut g = extract(&flat);
    println!(
        "[4] extract+merge: {} nodes, {} edges, {} roots",
        g.node_count(),
        g.edge_count(),
        g.roots().len()
    );

    // Phase 5: trim
    let stats = trim(&mut g);
    println!(
        "[5] trim: removed {} unreachable, collapsed {} pass-through -> {} nodes",
        stats.unreachable_removed,
        stats.passthrough_collapsed,
        g.node_count()
    );

    // Node-kind census + DOT export
    println!("\nnode kinds in the final DFG:");
    for (i, count) in g.kind_histogram().into_iter().enumerate() {
        if count > 0 {
            let kind = gnn4ip::dfg::NodeKind::from_index(i).expect("valid index");
            println!("  {kind:<10} {count}");
        }
    }
    let dot = g.to_dot();
    let path = std::env::temp_dir().join("gnn4ip_top.dot");
    std::fs::write(&path, &dot)?;
    println!(
        "\nDOT written to {} ({} bytes) — render with `dot -Tsvg`.",
        path.display(),
        dot.len()
    );
    Ok(())
}
